#include "src/logic/translate.h"

namespace mapcomp {
namespace logic {

namespace {

/// Substitutes variable `v` by `t` throughout a CQ fragment. Fails if the
/// substitution would nest a function term inside another function term.
Status SubstVarInTerm(Term* target, VarId v, const Term& t) {
  if (target->IsVar() && target->var == v) {
    *target = t;
    return Status::OK();
  }
  if (target->IsFunc()) {
    for (VarId& a : target->func_args) {
      if (a == v) {
        if (!t.IsVar()) {
          return Status::Unsupported(
              "substitution would nest a non-variable inside a Skolem term");
        }
        a = t.var;
      }
    }
  }
  return Status::OK();
}

Status SubstVar(CQ* cq, VarId v, const Term& t) {
  for (LAtom& a : cq->atoms) {
    for (Term& arg : a.args) MAPCOMP_RETURN_IF_ERROR(SubstVarInTerm(&arg, v, t));
  }
  for (TermCond& c : cq->conds) {
    MAPCOMP_RETURN_IF_ERROR(SubstVarInTerm(&c.lhs, v, t));
    MAPCOMP_RETURN_IF_ERROR(SubstVarInTerm(&c.rhs, v, t));
  }
  for (Term& o : cq->outputs) MAPCOMP_RETURN_IF_ERROR(SubstVarInTerm(&o, v, t));
  return Status::OK();
}

/// Unifies two terms inside a CQ. Plain variables are substituted away;
/// comparisons involving function terms are recorded as conditions.
/// Sets *dead when the disjunct becomes unsatisfiable (distinct constants).
Status UnifyTerms(CQ* cq, const Term& a, const Term& b, bool* dead) {
  if (a == b) return Status::OK();
  // Function terms are never substituted into atoms here: an equality on a
  // Skolem value is a "restricting atom" whose fate deskolemization decides.
  if (a.IsFunc() || b.IsFunc()) {
    cq->conds.push_back(TermCond{CmpOp::kEq, a, b});
    return Status::OK();
  }
  if (a.IsVar()) return SubstVar(cq, a.var, b);
  if (b.IsVar()) return SubstVar(cq, b.var, a);
  if (CompareValues(a.constant, b.constant) != 0) *dead = true;
  return Status::OK();
}

/// Flattens a selection condition into term comparisons over the CQ's
/// outputs. Only conjunctions of atoms are expressible; pure equalities are
/// unified away.
Status ApplyCondition(CQ* cq, const Condition& cond, bool* dead) {
  switch (cond.kind()) {
    case Condition::Kind::kTrue:
      return Status::OK();
    case Condition::Kind::kFalse:
      *dead = true;
      return Status::OK();
    case Condition::Kind::kAnd:
      for (const Condition& ch : cond.children()) {
        MAPCOMP_RETURN_IF_ERROR(ApplyCondition(cq, ch, dead));
        if (*dead) return Status::OK();
      }
      return Status::OK();
    case Condition::Kind::kOr:
    case Condition::Kind::kNot:
      return Status::Unsupported(
          "disjunctive/negated selection conditions are not expressible as "
          "conjunctive queries");
    case Condition::Kind::kAtom: {
      auto operand_term = [cq](const CondOperand& o) -> Result<Term> {
        if (!o.is_attr) return Term::MakeConst(o.constant);
        if (o.attr < 1 || o.attr > static_cast<int>(cq->outputs.size())) {
          return Status::Internal("condition attribute out of range");
        }
        return cq->outputs[o.attr - 1];
      };
      MAPCOMP_ASSIGN_OR_RETURN(Term lhs, operand_term(cond.lhs()));
      MAPCOMP_ASSIGN_OR_RETURN(Term rhs, operand_term(cond.rhs()));
      if (cond.op() == CmpOp::kEq) {
        return UnifyTerms(cq, lhs, rhs, dead);
      }
      if (lhs.IsConst() && rhs.IsConst()) {
        if (!EvalCmp(cond.op(), lhs.constant, rhs.constant)) *dead = true;
        return Status::OK();
      }
      cq->conds.push_back(TermCond{cond.op(), std::move(lhs), std::move(rhs)});
      return Status::OK();
    }
  }
  return Status::Internal("unknown condition kind");
}

}  // namespace

Result<std::vector<CQ>> ExprToUCQ(const ExprPtr& e, VarAllocator* vars) {
  switch (e->kind()) {
    case ExprKind::kRelation: {
      CQ cq;
      LAtom atom;
      atom.rel = e->name();
      for (int i = 0; i < e->arity(); ++i) {
        VarId v = vars->Fresh();
        atom.args.push_back(Term::MakeVar(v));
        cq.outputs.push_back(Term::MakeVar(v));
      }
      cq.atoms.push_back(std::move(atom));
      return std::vector<CQ>{std::move(cq)};
    }
    case ExprKind::kDomain: {
      CQ cq;
      for (int i = 0; i < e->arity(); ++i) {
        VarId v = vars->Fresh();
        cq.atoms.push_back(LAtom{kDomainAtom, {Term::MakeVar(v)}});
        cq.outputs.push_back(Term::MakeVar(v));
      }
      return std::vector<CQ>{std::move(cq)};
    }
    case ExprKind::kEmpty:
      return std::vector<CQ>{};
    case ExprKind::kLiteral: {
      std::vector<CQ> out;
      for (const Tuple& t : e->tuples()) {
        CQ cq;
        for (const Value& v : t) cq.outputs.push_back(Term::MakeConst(v));
        out.push_back(std::move(cq));
      }
      return out;
    }
    case ExprKind::kUnion: {
      MAPCOMP_ASSIGN_OR_RETURN(std::vector<CQ> a,
                               ExprToUCQ(e->child(0), vars));
      MAPCOMP_ASSIGN_OR_RETURN(std::vector<CQ> b,
                               ExprToUCQ(e->child(1), vars));
      for (CQ& cq : b) a.push_back(std::move(cq));
      return a;
    }
    case ExprKind::kIntersect: {
      MAPCOMP_ASSIGN_OR_RETURN(std::vector<CQ> a,
                               ExprToUCQ(e->child(0), vars));
      std::vector<CQ> out;
      for (const CQ& ca : a) {
        // Re-translate the right child per disjunct so variables stay fresh.
        MAPCOMP_ASSIGN_OR_RETURN(std::vector<CQ> b,
                                 ExprToUCQ(e->child(1), vars));
        for (CQ cb : b) {
          CQ merged = ca;
          merged.atoms.insert(merged.atoms.end(), cb.atoms.begin(),
                              cb.atoms.end());
          merged.conds.insert(merged.conds.end(), cb.conds.begin(),
                              cb.conds.end());
          bool dead = false;
          for (size_t i = 0; i < merged.outputs.size(); ++i) {
            // Unify in a temporary CQ that also holds cb's outputs so
            // substitutions reach them.
            CQ work = merged;
            work.outputs.insert(work.outputs.end(), cb.outputs.begin(),
                                cb.outputs.end());
            MAPCOMP_RETURN_IF_ERROR(UnifyTerms(
                &work, work.outputs[i], work.outputs[merged.outputs.size() + i],
                &dead));
            cb.outputs.assign(work.outputs.begin() + merged.outputs.size(),
                              work.outputs.end());
            work.outputs.resize(merged.outputs.size());
            merged = std::move(work);
            if (dead) break;
          }
          if (!dead) out.push_back(std::move(merged));
        }
      }
      return out;
    }
    case ExprKind::kProduct: {
      MAPCOMP_ASSIGN_OR_RETURN(std::vector<CQ> a,
                               ExprToUCQ(e->child(0), vars));
      std::vector<CQ> out;
      for (const CQ& ca : a) {
        MAPCOMP_ASSIGN_OR_RETURN(std::vector<CQ> b,
                                 ExprToUCQ(e->child(1), vars));
        for (const CQ& cb : b) {
          CQ merged = ca;
          merged.atoms.insert(merged.atoms.end(), cb.atoms.begin(),
                              cb.atoms.end());
          merged.conds.insert(merged.conds.end(), cb.conds.begin(),
                              cb.conds.end());
          merged.outputs.insert(merged.outputs.end(), cb.outputs.begin(),
                                cb.outputs.end());
          out.push_back(std::move(merged));
        }
      }
      return out;
    }
    case ExprKind::kDifference:
      return Status::Unsupported(
          "set difference is not expressible as a conjunctive query");
    case ExprKind::kSelect: {
      MAPCOMP_ASSIGN_OR_RETURN(std::vector<CQ> a,
                               ExprToUCQ(e->child(0), vars));
      std::vector<CQ> out;
      for (CQ& cq : a) {
        bool dead = false;
        MAPCOMP_RETURN_IF_ERROR(ApplyCondition(&cq, e->condition(), &dead));
        if (!dead) out.push_back(std::move(cq));
      }
      return out;
    }
    case ExprKind::kProject: {
      MAPCOMP_ASSIGN_OR_RETURN(std::vector<CQ> a,
                               ExprToUCQ(e->child(0), vars));
      for (CQ& cq : a) {
        std::vector<Term> picked;
        picked.reserve(e->indexes().size());
        for (int i : e->indexes()) picked.push_back(cq.outputs[i - 1]);
        cq.outputs = std::move(picked);
      }
      return a;
    }
    case ExprKind::kSkolem: {
      MAPCOMP_ASSIGN_OR_RETURN(std::vector<CQ> a,
                               ExprToUCQ(e->child(0), vars));
      for (CQ& cq : a) {
        std::vector<VarId> args;
        args.reserve(e->indexes().size());
        for (int i : e->indexes()) {
          const Term& t = cq.outputs[i - 1];
          if (!t.IsVar()) {
            return Status::Unsupported(
                "Skolem argument is not a plain variable (nested or constant "
                "argument)");
          }
          args.push_back(t.var);
        }
        cq.outputs.push_back(Term::MakeFunc(e->name(), std::move(args)));
      }
      return a;
    }
    case ExprKind::kUserOp:
      return Status::Unsupported("user-defined operator " + e->name() +
                                 " has no conjunctive-query translation");
  }
  return Status::Internal("unknown expression kind");
}

Result<std::vector<Dependency>> ConstraintToDependencies(const Constraint& c) {
  if (c.kind != ConstraintKind::kContainment) {
    return Status::InvalidArgument(
        "only containment constraints translate to dependencies");
  }
  VarAllocator vars;
  MAPCOMP_ASSIGN_OR_RETURN(std::vector<CQ> lhs, ExprToUCQ(c.lhs, &vars));
  std::vector<Dependency> out;
  for (const CQ& body_cq : lhs) {
    // Translate the rhs fresh for each disjunct so variables don't clash
    // across dependencies sharing an allocator.
    MAPCOMP_ASSIGN_OR_RETURN(std::vector<CQ> rhs, ExprToUCQ(c.rhs, &vars));
    if (rhs.size() != 1) {
      return Status::Unsupported(
          "constraint rhs must translate to a single conjunctive query (got " +
          std::to_string(rhs.size()) + " disjuncts)");
    }
    CQ head_cq = std::move(rhs[0]);
    for (const Term& t : head_cq.outputs) {
      if (t.IsFunc()) {
        return Status::Unsupported("Skolem term on constraint rhs");
      }
    }
    Dependency dep;
    dep.body = body_cq.atoms;
    dep.body_conds = body_cq.conds;
    std::vector<TermCond> head_conds = head_cq.conds;
    // Unify head outputs with body outputs position by position.
    for (size_t p = 0; p < body_cq.outputs.size(); ++p) {
      const Term& body_term = body_cq.outputs[p];
      Term head_term = head_cq.outputs[p];
      if (head_term.IsVar()) {
        // Substitute the head variable by the body term throughout the head.
        CQ work;
        work.atoms = std::move(head_cq.atoms);
        work.conds = std::move(head_conds);
        work.outputs = std::move(head_cq.outputs);
        MAPCOMP_RETURN_IF_ERROR(SubstVar(&work, head_term.var, body_term));
        head_cq.atoms = std::move(work.atoms);
        head_conds = std::move(work.conds);
        head_cq.outputs = std::move(work.outputs);
      } else if (!(head_term == body_term)) {
        // Constant (or already-substituted term) on the head side: record
        // the forced equality.
        head_conds.push_back(TermCond{CmpOp::kEq, body_term, head_term});
      }
    }
    dep.head = std::move(head_cq.atoms);
    dep.head_conds = std::move(head_conds);
    dep.num_vars = vars.next;
    out.push_back(dep.Canonicalized());
  }
  return out;
}

}  // namespace logic
}  // namespace mapcomp
