#include "src/logic/dependency.h"

namespace mapcomp {
namespace logic {

std::string LAtom::ToString() const {
  std::string out = rel + "(";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) out += ",";
    out += args[i].ToString();
  }
  out += ")";
  return out;
}

std::string TermCond::ToString() const {
  return lhs.ToString() + CmpOpToString(op) + rhs.ToString();
}

namespace {
void AddTermVars(const Term& t, std::set<VarId>* out) {
  if (t.IsVar()) out->insert(t.var);
  if (t.IsFunc()) {
    for (VarId a : t.func_args) out->insert(a);
  }
}
}  // namespace

std::set<VarId> Dependency::BodyVars() const {
  std::set<VarId> out;
  for (const LAtom& a : body) {
    for (const Term& t : a.args) AddTermVars(t, &out);
  }
  for (const TermCond& c : body_conds) {
    AddTermVars(c.lhs, &out);
    AddTermVars(c.rhs, &out);
  }
  return out;
}

std::set<VarId> Dependency::HeadVars() const {
  std::set<VarId> out;
  for (const LAtom& a : head) {
    for (const Term& t : a.args) AddTermVars(t, &out);
  }
  for (const TermCond& c : head_conds) {
    AddTermVars(c.lhs, &out);
    AddTermVars(c.rhs, &out);
  }
  return out;
}

std::set<std::string> Dependency::FunctionNames() const {
  std::set<std::string> out;
  auto visit = [&out](const Term& t) {
    if (t.IsFunc()) out.insert(t.func);
  };
  for (const LAtom& a : body) {
    for (const Term& t : a.args) visit(t);
  }
  for (const TermCond& c : body_conds) {
    visit(c.lhs);
    visit(c.rhs);
  }
  for (const LAtom& a : head) {
    for (const Term& t : a.args) visit(t);
  }
  for (const TermCond& c : head_conds) {
    visit(c.lhs);
    visit(c.rhs);
  }
  return out;
}

Dependency Dependency::Canonicalized() const {
  std::vector<VarId> remap(num_vars, -1);
  int next = 0;
  auto touch_var = [&](VarId v) {
    if (v >= 0 && v < num_vars && remap[v] == -1) remap[v] = next++;
  };
  auto touch = [&](const Term& t) {
    if (t.IsVar()) touch_var(t.var);
    if (t.IsFunc()) {
      for (VarId a : t.func_args) touch_var(a);
    }
  };
  for (const LAtom& a : body) {
    for (const Term& t : a.args) touch(t);
  }
  for (const TermCond& c : body_conds) {
    touch(c.lhs);
    touch(c.rhs);
  }
  for (const LAtom& a : head) {
    for (const Term& t : a.args) touch(t);
  }
  for (const TermCond& c : head_conds) {
    touch(c.lhs);
    touch(c.rhs);
  }
  // Unused variables map to fresh trailing ids.
  for (VarId v = 0; v < num_vars; ++v) {
    if (remap[v] == -1) remap[v] = next++;
  }
  Dependency out = *this;
  out.num_vars = next;
  for (LAtom& a : out.body) {
    for (Term& t : a.args) t = RemapTerm(t, remap);
  }
  for (TermCond& c : out.body_conds) {
    c.lhs = RemapTerm(c.lhs, remap);
    c.rhs = RemapTerm(c.rhs, remap);
  }
  for (LAtom& a : out.head) {
    for (Term& t : a.args) t = RemapTerm(t, remap);
  }
  for (TermCond& c : out.head_conds) {
    c.lhs = RemapTerm(c.lhs, remap);
    c.rhs = RemapTerm(c.rhs, remap);
  }
  return out;
}

std::string Dependency::ToString() const {
  std::string out;
  bool first = true;
  for (const LAtom& a : body) {
    if (!first) out += " & ";
    first = false;
    out += a.ToString();
  }
  for (const TermCond& c : body_conds) {
    if (!first) out += " & ";
    first = false;
    out += c.ToString();
  }
  if (first) out += "true";
  out += " -> ";
  first = true;
  for (const LAtom& a : head) {
    if (!first) out += " & ";
    first = false;
    out += a.ToString();
  }
  for (const TermCond& c : head_conds) {
    if (!first) out += " & ";
    first = false;
    out += c.ToString();
  }
  if (first) out += "true";
  return out;
}

std::vector<Term> CollectFunctionTerms(const Dependency& d) {
  std::vector<Term> out;
  auto visit = [&out](const Term& t) {
    if (t.IsFunc()) {
      for (const Term& seen : out) {
        if (seen == t) return;
      }
      out.push_back(t);
    }
  };
  for (const LAtom& a : d.body) {
    for (const Term& t : a.args) visit(t);
  }
  for (const TermCond& c : d.body_conds) {
    visit(c.lhs);
    visit(c.rhs);
  }
  for (const LAtom& a : d.head) {
    for (const Term& t : a.args) visit(t);
  }
  for (const TermCond& c : d.head_conds) {
    visit(c.lhs);
    visit(c.rhs);
  }
  return out;
}

}  // namespace logic
}  // namespace mapcomp
