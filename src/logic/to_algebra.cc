#include "src/logic/to_algebra.h"

#include <algorithm>
#include <map>

#include "src/algebra/builders.h"

namespace mapcomp {
namespace logic {

namespace {

/// Builds one side of the output constraint: the join of `atoms` filtered by
/// repeated-variable/constant equalities plus `conds`, projected onto
/// `exported` (each of which must occur in some atom).
Result<ExprPtr> BuildSide(const std::vector<LAtom>& atoms,
                          const std::vector<TermCond>& conds,
                          const std::vector<VarId>& exported) {
  if (atoms.empty()) {
    return Status::Unsupported("cannot build expression from an empty side");
  }
  ExprPtr cross;
  std::map<VarId, int> var_col;
  std::vector<Condition> selection;
  int base = 0;
  for (const LAtom& atom : atoms) {
    int arity = static_cast<int>(atom.args.size());
    if (arity == 0) return Status::Unsupported("zero-arity atom");
    ExprPtr rel = atom.rel == kDomainAtom ? Dom(1) : Rel(atom.rel, arity);
    cross = cross == nullptr ? rel : Product(cross, rel);
    for (int i = 0; i < arity; ++i) {
      const Term& t = atom.args[i];
      int col = base + i + 1;
      switch (t.kind) {
        case Term::Kind::kVar: {
          auto [it, inserted] = var_col.try_emplace(t.var, col);
          if (!inserted) {
            selection.push_back(Condition::AttrCmp(it->second, CmpOp::kEq, col));
          }
          break;
        }
        case Term::Kind::kConst:
          selection.push_back(Condition::AttrConst(col, CmpOp::kEq, t.constant));
          break;
        case Term::Kind::kFunc:
          return Status::Unsupported(
              "dependency still contains Skolem term " + t.ToString());
      }
    }
    base += arity;
  }
  auto term_operand = [&var_col](const Term& t) -> Result<CondOperand> {
    switch (t.kind) {
      case Term::Kind::kVar: {
        auto it = var_col.find(t.var);
        if (it == var_col.end()) {
          return Status::Unsupported("condition variable has no column");
        }
        return CondOperand::Attr(it->second);
      }
      case Term::Kind::kConst:
        return CondOperand::Const(t.constant);
      case Term::Kind::kFunc:
        return Status::Unsupported("Skolem term in condition");
    }
    return Status::Internal("unknown term kind");
  };
  for (const TermCond& c : conds) {
    MAPCOMP_ASSIGN_OR_RETURN(CondOperand lhs, term_operand(c.lhs));
    MAPCOMP_ASSIGN_OR_RETURN(CondOperand rhs, term_operand(c.rhs));
    selection.push_back(Condition::Atom(std::move(lhs), c.op, std::move(rhs)));
  }
  ExprPtr result = cross;
  Condition cond = Condition::AndAll(std::move(selection));
  if (!cond.IsTrue()) result = Select(std::move(cond), result);
  std::vector<int> proj;
  proj.reserve(exported.size());
  for (VarId v : exported) {
    auto it = var_col.find(v);
    if (it == var_col.end()) {
      return Status::Internal("exported variable has no column");
    }
    proj.push_back(it->second);
  }
  if (proj.empty()) return Status::Unsupported("no exported variables");
  if (proj != IdentityIndexes(result->arity())) {
    result = Project(std::move(proj), result);
  }
  return result;
}

}  // namespace

Result<Constraint> DependencyToConstraint(const Dependency& d) {
  Dependency dep = d;
  // A body whose atoms carry only constants has no variables to export;
  // generalize one constant argument into a fresh variable constrained to
  // equal it, so the standard construction applies.
  if (dep.BodyVars().empty() && !dep.body.empty()) {
    bool rewritten = false;
    for (LAtom& a : dep.body) {
      for (Term& t : a.args) {
        if (t.IsConst()) {
          Term var = Term::MakeVar(dep.num_vars++);
          dep.body_conds.push_back(TermCond{CmpOp::kEq, var, t});
          t = var;
          rewritten = true;
          break;
        }
      }
      if (rewritten) break;
    }
  }
  const Dependency& dd = dep;
  std::set<VarId> body_vars = dd.BodyVars();
  std::set<VarId> head_vars = dd.HeadVars();
  std::vector<VarId> exported;
  for (VarId v : body_vars) {
    if (head_vars.count(v) > 0) exported.push_back(v);
  }
  std::sort(exported.begin(), exported.end());

  std::vector<LAtom> head_atoms = dd.head;
  if (exported.empty()) {
    // Tether the two sides through one body variable; the head gains a $D
    // atom for it (sound: a body variable's value is in the active domain).
    if (body_vars.empty()) {
      return Status::Unsupported(
          "dependency with no variables cannot be rebuilt");
    }
    VarId v = *body_vars.begin();
    exported.push_back(v);
    head_atoms.push_back(LAtom{kDomainAtom, {Term::MakeVar(v)}});
  } else {
    // Exported variables referenced only by head conditions still need a
    // column on the head side.
    for (VarId v : exported) {
      bool in_atom = false;
      for (const LAtom& a : head_atoms) {
        for (const Term& t : a.args) {
          if (t.IsVar() && t.var == v) in_atom = true;
          if (t.IsFunc()) {
            for (VarId fa : t.func_args) {
              if (fa == v) in_atom = true;
            }
          }
        }
      }
      if (!in_atom) head_atoms.push_back(LAtom{kDomainAtom, {Term::MakeVar(v)}});
    }
  }
  if (head_atoms.empty()) {
    return Status::Unsupported("dependency with empty head cannot be rebuilt");
  }

  MAPCOMP_ASSIGN_OR_RETURN(ExprPtr lhs,
                           BuildSide(dd.body, dd.body_conds, exported));
  MAPCOMP_ASSIGN_OR_RETURN(ExprPtr rhs,
                           BuildSide(head_atoms, dd.head_conds, exported));
  return Constraint::Contain(std::move(lhs), std::move(rhs));
}

}  // namespace logic
}  // namespace mapcomp
