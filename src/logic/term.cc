#include "src/logic/term.h"

namespace mapcomp {
namespace logic {

bool Term::operator==(const Term& o) const {
  if (kind != o.kind) return false;
  switch (kind) {
    case Kind::kVar:
      return var == o.var;
    case Kind::kConst:
      return CompareValues(constant, o.constant) == 0;
    case Kind::kFunc:
      return func == o.func && func_args == o.func_args;
  }
  return false;
}

std::string Term::ToString() const {
  switch (kind) {
    case Kind::kVar:
      return "x" + std::to_string(var);
    case Kind::kConst:
      return ValueToString(constant);
    case Kind::kFunc: {
      std::string out = func + "(";
      for (size_t i = 0; i < func_args.size(); ++i) {
        if (i > 0) out += ",";
        out += "x" + std::to_string(func_args[i]);
      }
      out += ")";
      return out;
    }
  }
  return "?";
}

Term RemapTerm(const Term& t, const std::vector<VarId>& remap) {
  Term out = t;
  if (t.kind == Term::Kind::kVar) {
    out.var = remap[t.var];
  } else if (t.kind == Term::Kind::kFunc) {
    for (VarId& a : out.func_args) a = remap[a];
  }
  return out;
}

}  // namespace logic
}  // namespace mapcomp
