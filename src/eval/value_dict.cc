#include "src/eval/value_dict.h"

#include <stdexcept>

namespace mapcomp {

ValueDict::~ValueDict() {
  if (mint_chunks_ == nullptr) return;
  const uint32_t minted = mint_count_.load(std::memory_order_acquire);
  for (uint32_t c = 0; c * kMintChunk < minted; ++c) {
    delete[] mint_chunks_[c].load(std::memory_order_relaxed);
  }
}

void ValueDict::EnsureMintChunksLocked() {
  if (mint_chunks_ != nullptr) return;
  // Zero-initialized atomic pointers; the array itself is published to
  // readers through the same happens-before edge that publishes the first
  // minted id (no reader asks for a minted id it has not been handed).
  mint_chunks_.reset(new std::atomic<Value*>[kMaxMintChunks]());
}

void ValueDict::Seed(const std::set<Value>& universe) {
  seeded_.assign(universe.begin(), universe.end());
  seeded_index_.reserve(seeded_.size());
  for (size_t i = 0; i < seeded_.size(); ++i) {
    seeded_index_.emplace(seeded_[i], static_cast<ValueId>(i));
  }
  ordered_limit_ = static_cast<ValueId>(seeded_.size());
}

ValueId ValueDict::Intern(const Value& v) {
  auto it = seeded_index_.find(v);
  if (it != seeded_index_.end()) return it->second;
  std::lock_guard<std::mutex> lock(mint_mu_);
  auto mit = mint_index_.find(v);
  if (mit != mint_index_.end()) return mit->second;
  EnsureMintChunksLocked();
  const uint32_t off = mint_count_.load(std::memory_order_relaxed);
  if (off / kMintChunk >= kMaxMintChunks) {
    throw std::length_error("ValueDict: minted value capacity exceeded");
  }
  std::atomic<Value*>& slot = mint_chunks_[off / kMintChunk];
  Value* chunk = slot.load(std::memory_order_relaxed);
  if (chunk == nullptr) {
    chunk = new Value[kMintChunk];
    chunk[off % kMintChunk] = v;  // write before the pointer is published
    slot.store(chunk, std::memory_order_release);
  } else {
    chunk[off % kMintChunk] = v;
  }
  const ValueId id = ordered_limit_ + static_cast<ValueId>(off);
  mint_index_.emplace(v, id);
  mint_count_.store(off + 1, std::memory_order_release);
  return id;
}

const ValueId* ValueDict::Find(const Value& v) const {
  auto it = seeded_index_.find(v);
  if (it != seeded_index_.end()) return &it->second;
  std::lock_guard<std::mutex> lock(mint_mu_);
  auto mit = mint_index_.find(v);
  return mit == mint_index_.end() ? nullptr : &mit->second;
}

}  // namespace mapcomp
