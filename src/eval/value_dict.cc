#include "src/eval/value_dict.h"

namespace mapcomp {

void ValueDict::Seed(const std::set<Value>& universe) {
  values_.assign(universe.begin(), universe.end());
  index_.reserve(values_.size());
  for (size_t i = 0; i < values_.size(); ++i) {
    index_.emplace(values_[i], static_cast<ValueId>(i));
  }
  ordered_limit_ = static_cast<ValueId>(values_.size());
}

ValueId ValueDict::Intern(const Value& v) {
  auto it = index_.find(v);
  if (it != index_.end()) return it->second;
  ValueId id = static_cast<ValueId>(values_.size());
  values_.push_back(v);
  index_.emplace(v, id);
  return id;
}

const ValueId* ValueDict::Find(const Value& v) const {
  auto it = index_.find(v);
  return it == index_.end() ? nullptr : &it->second;
}

}  // namespace mapcomp
