#ifndef MAPCOMP_EVAL_EVALUATOR_H_
#define MAPCOMP_EVAL_EVALUATOR_H_

#include <set>

#include "src/algebra/expr.h"
#include "src/common/status.h"
#include "src/eval/instance.h"
#include "src/op/registry.h"

namespace mapcomp {

/// How the evaluator treats Skolem operator nodes.
enum class SkolemEvalMode {
  /// Evaluating a Skolem node is an error (the default — Skolem functions
  /// are existentially quantified, so a fixed interpretation is generally
  /// not meaningful).
  kError,
  /// Interpret every Skolem function as the canonical injective term
  /// constructor: f(v1..vk) ↦ the string "f(v1,..,vk)". Useful in tests.
  kInjectiveTerms,
};

/// Evaluation options.
struct EvalOptions {
  /// Extra values added to the active domain. Following the paper's use of
  /// D in rewrite identities, the checker passes every constant mentioned in
  /// the constraint set being checked, which keeps identities such as
  /// E ∪ D^r = D^r sound in the presence of literal relations.
  std::set<Value> extra_constants;
  SkolemEvalMode skolem_mode = SkolemEvalMode::kError;
  const op::Registry* registry = &op::Registry::Default();
  /// Guard on enumerating D^r: evaluation fails with ResourceExhausted when
  /// |adom|^r would exceed this.
  long long max_domain_tuples = 2'000'000;
};

/// Evaluates a relational expression against an instance under standard set
/// semantics (paper §2). `D` denotes the instance's active domain plus
/// `options.extra_constants`.
Result<std::set<Tuple>> Evaluate(const ExprPtr& e, const Instance& instance,
                                 const EvalOptions& options = {});

}  // namespace mapcomp

#endif  // MAPCOMP_EVAL_EVALUATOR_H_
