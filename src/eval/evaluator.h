#ifndef MAPCOMP_EVAL_EVALUATOR_H_
#define MAPCOMP_EVAL_EVALUATOR_H_

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/algebra/expr.h"
#include "src/common/cancel.h"
#include "src/common/status.h"
#include "src/eval/instance.h"
#include "src/op/registry.h"

namespace mapcomp {

class TupleTable;
class ValueDict;

/// How the evaluator treats Skolem operator nodes.
enum class SkolemEvalMode {
  /// Evaluating a Skolem node is an error (the default — Skolem functions
  /// are existentially quantified, so a fixed interpretation is generally
  /// not meaningful).
  kError,
  /// Interpret every Skolem function as the canonical injective term
  /// constructor: f(v1..vk) ↦ the string "f(v1,..,vk)". Useful in tests.
  kInjectiveTerms,
};

/// Evaluation options.
struct EvalOptions {
  /// Extra values added to the active domain. Following the paper's use of
  /// D in rewrite identities, the checker passes every constant mentioned in
  /// the constraint set being checked, which keeps identities such as
  /// E ∪ D^r = D^r sound in the presence of literal relations.
  std::set<Value> extra_constants;
  SkolemEvalMode skolem_mode = SkolemEvalMode::kError;
  const op::Registry* registry = &op::Registry::Default();
  /// Guard on enumerating D^r: evaluation fails with ResourceExhausted when
  /// |adom|^r would exceed this. Checked before any tuple is enumerated, so
  /// an oversized domain surfaces as an error, never as a hang — also under
  /// parallel lanes.
  long long max_domain_tuples = 2'000'000;
  /// Parallel lanes for the task-graph scheduler. 1 (the default) runs
  /// fully sequential on the calling thread; k > 1 runs the evaluation's
  /// node tasks — and, within large nodes, sharded probe/enumeration
  /// morsels — on up to k lanes (k-1 helpers from runtime::GlobalPool()
  /// plus the caller). Results and Fingerprint() are byte-identical for any
  /// value: scheduling only decides who computes a slot, never what lands
  /// in it.
  int jobs = 1;
  /// Minimum per-node work (candidate tuples enumerated) before a node is
  /// sharded across lanes. Eligibility depends only on the data, never on
  /// `jobs`, so EvalStats is lane-count-independent too.
  int64_t parallel_threshold = 4096;
  /// Forces the pre-kernel evaluation strategy: tuples as value vectors in
  /// `std::set`, products materialized as full nested loops with the
  /// selection applied afterwards, `D^r` always enumerated in full. Kept as
  /// the columnar kernel's differential oracle — `EvalResult::Fingerprint()`
  /// must be byte-identical between the two paths (the kernel may *succeed*
  /// where the nested-loop path exhausts `max_domain_tuples`, since
  /// constraint-driven `σ(D^r)` enumeration needs only the pruned space).
  bool force_nested_loop = false;
  /// Cooperative cancellation/deadline token, polled at task-graph slot
  /// boundaries (both sides of each slot's compute) and at sharded-morsel
  /// chunk boundaries. A fired token makes the evaluation return
  /// kDeadlineExceeded / kCancelled; a run that completes without it firing
  /// is byte-identical — results, Fingerprint() and EvalStats — to a run
  /// with no token, because every check site only reads the token. If the
  /// token fires after every root table is already materialized, the
  /// completed result wins the race and is returned as a success.
  common::CancelToken cancel;
};

/// Counters of one evaluation. Deterministic for a fixed expression,
/// instance and options — including `jobs` (sharding eligibility and task
/// decomposition are counted, not actual lane usage), so stats can be
/// compared across lane counts.
struct EvalStats {
  int64_t nodes_evaluated = 0;  ///< distinct DAG nodes computed
  int64_t memo_hits = 0;        ///< node visits answered by the memo table
  int64_t sharded_nodes = 0;    ///< nodes whose work crossed parallel_threshold
  int64_t tuples_produced = 0;  ///< sum of output sizes over computed nodes
  /// `select(product)` nodes the kernel ran as sharded hash joins, vs.
  /// products it had to materialize as nested loops (bare `kProduct` nodes
  /// and keyless select-over-product fallbacks). The join-vs-product split
  /// is the planner's effectiveness metric.
  int64_t hash_join_nodes = 0;
  int64_t nested_product_nodes = 0;
  /// Memo memory accounting: every memoized table's approximate footprint
  /// is added to `memo_bytes_total`; `memo_bytes_peak` is the high-water
  /// mark of *live* memo bytes — a node's table is dropped as soon as its
  /// last DAG parent has consumed it, so on deep chains peak ≪ total.
  int64_t memo_bytes_total = 0;
  int64_t memo_bytes_peak = 0;
  /// Task-graph decomposition (kernel path): node tasks plus the sharded
  /// morsel chunks of every eligible intra-node enumeration — the units a
  /// free lane can claim. Derived from work sizes and the fixed chunking
  /// constant only, never from `jobs`.
  int64_t tasks_spawned = 0;
  /// Widest structural layer of the task graph (nodes whose longest input
  /// chain has equal length) — an upper bound on sibling tasks that can be
  /// ready simultaneously. A watermark like memo_bytes_peak: MergeFrom
  /// takes the max, DiffFrom keeps this side's value.
  int64_t max_ready_depth = 0;
  /// Per-instance build-side join-index cache (Instance::JoinIndex):
  /// lookups answered by a cached permutation vs. built fresh.
  int64_t index_cache_hits = 0;
  int64_t index_cache_misses = 0;
  /// User-operator kernel routing: nodes that ran a registered columnar
  /// kernel (`OperatorDef::eval_columnar`) vs. nodes that decoded their
  /// children for the legacy set-based `eval` hook. `user_op_decode_fallback
  /// == 0` ⇔ the kernel's decode cache stayed empty — the no-decode-seam
  /// witness. The nested-loop oracle counts every user op as a fallback
  /// (it is the set-based path by definition).
  int64_t user_op_columnar = 0;
  int64_t user_op_decode_fallback = 0;

  void MergeFrom(const EvalStats& other);
  /// Counter-wise `this - before` (the work added since the `before`
  /// snapshot); inverse of MergeFrom so the field list lives in one place.
  /// `memo_bytes_peak` and `max_ready_depth` are watermarks, not counters:
  /// MergeFrom takes the max, DiffFrom keeps this side's value.
  EvalStats DiffFrom(const EvalStats& before) const;
  std::string ToString() const;
};

/// A fully evaluated expression: the resulting relation plus evaluation
/// counters.
///
/// Kernel results stay columnar until someone actually needs value tuples:
/// `tuples()` decodes the TupleTable on first access (cached — copies of
/// one result share the decode), and `Fingerprint()` streams the table
/// directly with zero decode whenever every id is in the dictionary's
/// order-preserving seeded range. Containment callers never decode at all.
struct EvalResult {
  int arity = 0;
  EvalStats stats;

  EvalResult();

  /// The result as a canonical value-ordered tuple set, decoding on first
  /// access. The reference stays valid while any copy of this EvalResult
  /// lives (and until TakeTuples()).
  const std::set<Tuple>& tuples() const;

  /// Moves the decoded tuple set out, leaving this result (and its copies)
  /// empty. For callers that consume the set — the feed-fixpoint loop.
  std::set<Tuple> TakeTuples();

  /// Canonical serialization of the *semantic* result (arity + tuples in
  /// set order). Stats are excluded: two evaluations of the same expression
  /// over the same instance produce equal fingerprints at any job count.
  std::string Fingerprint() const;

  /// Installers used by the evaluator (and tests building fixed results).
  void SetDecoded(std::set<Tuple> tuples);
  void SetTable(std::shared_ptr<const TupleTable> table,
                std::shared_ptr<const ValueDict> dict);

 private:
  struct Lazy;
  std::shared_ptr<Lazy> lazy_;
};

/// Evaluates a relational expression against an instance under standard set
/// semantics (paper §2). `D` denotes the instance's active domain plus
/// `options.extra_constants`.
///
/// The engine is DAG-aware and morsel-driven: a sequential plan phase walks
/// the interned DAG exactly like the old recursive evaluator (memoization,
/// join planning, refcount-driven memo dropping and every guard check are
/// decided there, so stats and error precedence are schedule-independent),
/// then every planned node becomes a task that fires when its inputs
/// retire. Sibling subtrees, hash-join probe morsels and multiple
/// EvaluateMany roots interleave on the same `options.jobs` lanes, while
/// results and Fingerprint() stay byte-identical at any lane count.
Result<EvalResult> EvaluateFull(const ExprPtr& e, const Instance& instance,
                                const EvalOptions& options = {});

/// Evaluates several roots against one instance under ONE shared memo
/// table, so subtrees shared *across* roots — e.g. the two sides of a
/// constraint emitted by the composer, which frequently reuse the same
/// join — also evaluate exactly once, and independent roots' subtrees run
/// concurrently on the task graph. Results come back in root order; each
/// root's stats cover the work its evaluation added (a subtree a later
/// root found memoized counts as that root's memo hit).
Result<std::vector<EvalResult>> EvaluateMany(const std::vector<ExprPtr>& roots,
                                             const Instance& instance,
                                             const EvalOptions& options = {});

/// Convenience wrapper returning only the tuple set.
Result<std::set<Tuple>> Evaluate(const ExprPtr& e, const Instance& instance,
                                 const EvalOptions& options = {});

/// Evaluates both sides of a constraint under one shared memo and reports
/// `lhs ⊆ rhs` (with `equality` also `|lhs| == |rhs|`) — the checker's hot
/// path. On the kernel path the subset check is a linear merge walk over
/// the two columnar tables; nothing is ever decoded back to `std::set`.
/// Accumulates evaluation counters into `stats` when non-null.
Result<bool> EvaluateContainment(const ExprPtr& lhs, const ExprPtr& rhs,
                                 bool equality, const Instance& instance,
                                 const EvalOptions& options = {},
                                 EvalStats* stats = nullptr);

}  // namespace mapcomp

#endif  // MAPCOMP_EVAL_EVALUATOR_H_
