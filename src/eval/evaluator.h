#ifndef MAPCOMP_EVAL_EVALUATOR_H_
#define MAPCOMP_EVAL_EVALUATOR_H_

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "src/algebra/expr.h"
#include "src/common/status.h"
#include "src/eval/instance.h"
#include "src/op/registry.h"

namespace mapcomp {

/// How the evaluator treats Skolem operator nodes.
enum class SkolemEvalMode {
  /// Evaluating a Skolem node is an error (the default — Skolem functions
  /// are existentially quantified, so a fixed interpretation is generally
  /// not meaningful).
  kError,
  /// Interpret every Skolem function as the canonical injective term
  /// constructor: f(v1..vk) ↦ the string "f(v1,..,vk)". Useful in tests.
  kInjectiveTerms,
};

/// Evaluation options.
struct EvalOptions {
  /// Extra values added to the active domain. Following the paper's use of
  /// D in rewrite identities, the checker passes every constant mentioned in
  /// the constraint set being checked, which keeps identities such as
  /// E ∪ D^r = D^r sound in the presence of literal relations.
  std::set<Value> extra_constants;
  SkolemEvalMode skolem_mode = SkolemEvalMode::kError;
  const op::Registry* registry = &op::Registry::Default();
  /// Guard on enumerating D^r: evaluation fails with ResourceExhausted when
  /// |adom|^r would exceed this. Checked before any tuple is enumerated, so
  /// an oversized domain surfaces as an error, never as a hang — also under
  /// parallel lanes.
  long long max_domain_tuples = 2'000'000;
  /// Parallel lanes for sharded node enumeration. 1 (the default) runs
  /// fully sequential on the calling thread; k > 1 runs large nodes on up
  /// to k lanes (k-1 helpers from runtime::GlobalPool() plus the caller).
  /// Results and Fingerprint() are byte-identical for any value: sharding
  /// only decides who enumerates which slice, never what the set contains.
  int jobs = 1;
  /// Minimum per-node work (candidate tuples enumerated) before a node is
  /// sharded across lanes. Eligibility depends only on the data, never on
  /// `jobs`, so EvalStats is lane-count-independent too.
  int64_t parallel_threshold = 4096;
  /// Forces the pre-kernel evaluation strategy: tuples as value vectors in
  /// `std::set`, products materialized as full nested loops with the
  /// selection applied afterwards, `D^r` always enumerated in full. Kept as
  /// the columnar kernel's differential oracle — `EvalResult::Fingerprint()`
  /// must be byte-identical between the two paths (the kernel may *succeed*
  /// where the nested-loop path exhausts `max_domain_tuples`, since
  /// constraint-driven `σ(D^r)` enumeration needs only the pruned space).
  bool force_nested_loop = false;
};

/// Counters of one evaluation. Deterministic for a fixed expression,
/// instance and options — including `jobs` (sharding eligibility is counted,
/// not actual lane usage), so stats can be compared across lane counts.
struct EvalStats {
  int64_t nodes_evaluated = 0;  ///< distinct DAG nodes computed
  int64_t memo_hits = 0;        ///< node visits answered by the memo table
  int64_t sharded_nodes = 0;    ///< nodes whose work crossed parallel_threshold
  int64_t tuples_produced = 0;  ///< sum of output sizes over computed nodes
  /// `select(product)` nodes the kernel ran as sharded hash joins, vs.
  /// products it had to materialize as nested loops (bare `kProduct` nodes
  /// and keyless select-over-product fallbacks). The join-vs-product split
  /// is the planner's effectiveness metric.
  int64_t hash_join_nodes = 0;
  int64_t nested_product_nodes = 0;
  /// Memo memory accounting: every memoized table's approximate footprint
  /// is added to `memo_bytes_total`; `memo_bytes_peak` is the high-water
  /// mark of *live* memo bytes — a node's table is dropped as soon as its
  /// last DAG parent has consumed it, so on deep chains peak ≪ total.
  int64_t memo_bytes_total = 0;
  int64_t memo_bytes_peak = 0;

  void MergeFrom(const EvalStats& other);
  /// Counter-wise `this - before` (the work added since the `before`
  /// snapshot); inverse of MergeFrom so the field list lives in one place.
  /// `memo_bytes_peak` is a watermark, not a counter: MergeFrom takes the
  /// max, DiffFrom keeps this side's value.
  EvalStats DiffFrom(const EvalStats& before) const;
  std::string ToString() const;
};

/// A fully evaluated expression: the resulting relation plus evaluation
/// counters.
struct EvalResult {
  std::set<Tuple> tuples;
  int arity = 0;
  EvalStats stats;

  /// Canonical serialization of the *semantic* result (arity + tuples in
  /// set order). Stats are excluded: two evaluations of the same expression
  /// over the same instance produce equal fingerprints at any job count.
  std::string Fingerprint() const;
};

/// Evaluates a relational expression against an instance under standard set
/// semantics (paper §2). `D` denotes the instance's active domain plus
/// `options.extra_constants`.
///
/// The engine is DAG-aware: results are memoized per interned node (pointer
/// equality ⇔ structural equality), so a subtree shared k times evaluates
/// once and hits the memo k-1 times. Large enumerations — D^r, selections,
/// projections, products, set operations — are sharded across
/// `options.jobs` lanes with a deterministic chunk-ordered merge
/// (runtime::ShardedTransform), so the result set is byte-identical at any
/// lane count.
Result<EvalResult> EvaluateFull(const ExprPtr& e, const Instance& instance,
                                const EvalOptions& options = {});

/// Evaluates several roots against one instance under ONE shared memo
/// table, so subtrees shared *across* roots — e.g. the two sides of a
/// constraint emitted by the composer, which frequently reuse the same
/// join — also evaluate exactly once. Results come back in root order;
/// each root's stats cover the work its evaluation added (a subtree a
/// later root found memoized counts as that root's memo hit).
Result<std::vector<EvalResult>> EvaluateMany(const std::vector<ExprPtr>& roots,
                                             const Instance& instance,
                                             const EvalOptions& options = {});

/// Convenience wrapper returning only the tuple set.
Result<std::set<Tuple>> Evaluate(const ExprPtr& e, const Instance& instance,
                                 const EvalOptions& options = {});

/// Evaluates both sides of a constraint under one shared memo and reports
/// `lhs ⊆ rhs` (with `equality` also `|lhs| == |rhs|`) — the checker's hot
/// path. On the kernel path the subset check is a linear merge walk over
/// the two columnar tables; nothing is ever decoded back to `std::set`.
/// Accumulates evaluation counters into `stats` when non-null.
Result<bool> EvaluateContainment(const ExprPtr& lhs, const ExprPtr& rhs,
                                 bool equality, const Instance& instance,
                                 const EvalOptions& options = {},
                                 EvalStats* stats = nullptr);

}  // namespace mapcomp

#endif  // MAPCOMP_EVAL_EVALUATOR_H_
