#include "src/eval/tuple_table.h"

#include <algorithm>

namespace mapcomp {

void TupleTable::AppendRow(const ValueId* row) {
  data_.insert(data_.end(), row, row + arity_);
  ++rows_;
}

void TupleTable::FinishAppends() {
  // Arity-0 emitters must use AppendRow (a zero-stride row leaves no trace
  // in data_ to count).
  if (arity_ > 0) rows_ = static_cast<int64_t>(data_.size()) / arity_;
}

namespace {

/// Applies a row permutation `perm` (optionally truncated to `keep` rows)
/// to `data`, row stride `arity`.
std::vector<ValueId> Permute(const std::vector<ValueId>& data, int arity,
                             const std::vector<int64_t>& perm, int64_t keep) {
  std::vector<ValueId> out;
  out.reserve(static_cast<size_t>(keep) * arity);
  for (int64_t i = 0; i < keep; ++i) {
    const ValueId* row = data.data() + perm[i] * arity;
    out.insert(out.end(), row, row + arity);
  }
  return out;
}

}  // namespace

void TupleTable::SortRows() {
  if (arity_ == 0 || rows_ < 2) return;
  std::vector<int64_t> perm(rows_);
  for (int64_t i = 0; i < rows_; ++i) perm[i] = i;
  const ValueId* base = data_.data();
  int arity = arity_;
  std::sort(perm.begin(), perm.end(), [base, arity](int64_t a, int64_t b) {
    return CompareRows(base + a * arity, base + b * arity, arity) < 0;
  });
  data_ = Permute(data_, arity_, perm, rows_);
}

void TupleTable::SortDedupRows() {
  if (arity_ == 0) {
    rows_ = rows_ > 0 ? 1 : 0;
    return;
  }
  if (rows_ < 2) return;
  SortRows();
  // Sorted: compact equal neighbors in place.
  int64_t keep = 1;
  for (int64_t i = 1; i < rows_; ++i) {
    if (CompareRows(Row(i), Row(keep - 1), arity_) != 0) {
      if (keep != i) {
        std::copy(Row(i), Row(i) + arity_, data_.begin() + keep * arity_);
      }
      ++keep;
    }
  }
  rows_ = keep;
  data_.resize(static_cast<size_t>(rows_) * arity_);
}

bool TupleTable::Contains(const ValueId* row) const {
  if (arity_ == 0) return rows_ > 0;
  int64_t lo = 0, hi = rows_;
  while (lo < hi) {
    int64_t mid = lo + (hi - lo) / 2;
    int cmp = CompareRows(Row(mid), row, arity_);
    if (cmp == 0) return true;
    if (cmp < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return false;
}

bool TupleTable::SubsetOf(const TupleTable& a, const TupleTable& b) {
  // Tuples of different arities are never equal, so across a mismatch only
  // the empty table is a subset (mirrors set-lookup semantics; the public
  // containment API can be handed two sides of different arities).
  if (a.arity_ != b.arity_) return a.rows_ == 0;
  if (a.arity_ == 0) return a.rows_ == 0 || b.rows_ > 0;
  if (a.rows_ > b.rows_) return false;
  int64_t i = 0, j = 0;
  while (i < a.rows_) {
    if (j >= b.rows_) return false;
    int cmp = CompareRows(a.Row(i), b.Row(j), a.arity_);
    if (cmp == 0) {
      ++i;
      ++j;
    } else if (cmp > 0) {
      ++j;
    } else {
      return false;  // a's row absent from b
    }
  }
  return true;
}

TupleTable TupleTable::UnionOf(const TupleTable& a, const TupleTable& b) {
  TupleTable out(a.arity_);
  if (a.arity_ == 0) {
    out.rows_ = (a.rows_ > 0 || b.rows_ > 0) ? 1 : 0;
    return out;
  }
  out.data_.reserve(a.data_.size() + b.data_.size());
  int64_t i = 0, j = 0;
  while (i < a.rows_ && j < b.rows_) {
    int cmp = CompareRows(a.Row(i), b.Row(j), a.arity_);
    if (cmp < 0) {
      out.AppendRow(a.Row(i++));
    } else if (cmp > 0) {
      out.AppendRow(b.Row(j++));
    } else {
      out.AppendRow(a.Row(i++));
      ++j;
    }
  }
  for (; i < a.rows_; ++i) out.AppendRow(a.Row(i));
  for (; j < b.rows_; ++j) out.AppendRow(b.Row(j));
  return out;
}

TupleTable TupleTable::IntersectOf(const TupleTable& a, const TupleTable& b) {
  TupleTable out(a.arity_);
  if (a.arity_ == 0) {
    out.rows_ = (a.rows_ > 0 && b.rows_ > 0) ? 1 : 0;
    return out;
  }
  int64_t i = 0, j = 0;
  while (i < a.rows_ && j < b.rows_) {
    int cmp = CompareRows(a.Row(i), b.Row(j), a.arity_);
    if (cmp < 0) {
      ++i;
    } else if (cmp > 0) {
      ++j;
    } else {
      out.AppendRow(a.Row(i++));
      ++j;
    }
  }
  return out;
}

TupleTable TupleTable::DifferenceOf(const TupleTable& a, const TupleTable& b) {
  TupleTable out(a.arity_);
  if (a.arity_ == 0) {
    out.rows_ = (a.rows_ > 0 && b.rows_ == 0) ? 1 : 0;
    return out;
  }
  int64_t i = 0, j = 0;
  while (i < a.rows_) {
    if (j >= b.rows_) {
      out.AppendRow(a.Row(i++));
      continue;
    }
    int cmp = CompareRows(a.Row(i), b.Row(j), a.arity_);
    if (cmp < 0) {
      out.AppendRow(a.Row(i++));
    } else if (cmp > 0) {
      ++j;
    } else {
      ++i;
      ++j;
    }
  }
  return out;
}

Result<TupleTable> TupleTable::FromSet(const std::set<Tuple>& s, int arity,
                                       ValueDict* dict) {
  TupleTable out(arity);
  if (arity == 0) {
    if (!s.empty() && !s.begin()->empty()) {
      return Status::InvalidArgument("cannot encode non-empty tuples into "
                                     "an arity-0 relation");
    }
    out.rows_ = s.empty() ? 0 : 1;
    return out;
  }
  out.data_.reserve(s.size() * static_cast<size_t>(arity));
  bool ordered = true;
  ValueId limit = dict->ordered_limit();
  for (const Tuple& t : s) {
    if (static_cast<int>(t.size()) != arity) {
      return Status::InvalidArgument(
          "cannot encode a " + std::to_string(t.size()) +
          "-tuple into an arity-" + std::to_string(arity) + " relation");
    }
    for (const Value& v : t) {
      ValueId id = dict->Intern(v);
      ordered = ordered && id < limit;
      out.data_.push_back(id);
    }
  }
  out.rows_ = static_cast<int64_t>(s.size());
  // Set iteration is ascending value order; within the seeded range that IS
  // ascending id order, so the table arrives sorted. Values beyond the
  // seeded range (never the case for instance relations, whose values are
  // all in the active domain) force an explicit sort.
  if (!ordered) out.SortDedupRows();
  return out;
}

std::set<Tuple> TupleTable::ToSet(const ValueDict& dict) const {
  std::set<Tuple> out;
  if (arity_ == 0) {
    if (rows_ > 0) out.insert(Tuple{});
    return out;
  }
  for (int64_t i = 0; i < rows_; ++i) {
    const ValueId* row = Row(i);
    Tuple t;
    t.reserve(arity_);
    for (int k = 0; k < arity_; ++k) t.push_back(dict.ValueOf(row[k]));
    // A sorted table whose ids are all in the seeded range decodes in
    // ascending value order, so the end hint makes the build linear; with
    // out-of-order (appended) ids the hint is just ignored.
    out.insert(out.end(), std::move(t));
  }
  return out;
}

}  // namespace mapcomp
