#ifndef MAPCOMP_EVAL_INSTANCE_H_
#define MAPCOMP_EVAL_INSTANCE_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/algebra/value.h"
#include "src/constraints/signature.h"

namespace mapcomp {

/// A database instance: relation name → finite set of tuples (paper §2).
/// `(A,B)` — the instance over σ1 ∪ σ2 formed from instances A and B — is
/// modeled by simply holding both signatures' relations in one Instance.
class Instance {
 public:
  void Set(const std::string& name, std::set<Tuple> tuples);
  void Add(const std::string& name, Tuple t);
  void Clear(const std::string& name);

  /// Contents of relation `name` (empty set if absent).
  const std::set<Tuple>& Get(const std::string& name) const;

  bool Has(const std::string& name) const;
  std::vector<std::string> RelationNames() const;

  /// Total tuple count across all relations (workload sizing, reports).
  int64_t TotalTuples() const;

  /// Set of values appearing anywhere in the instance (paper §2).
  std::set<Value> ActiveDomain() const;

  /// Merges `other` into a copy of this (union of relations; shared names
  /// take the union of their tuple sets).
  Instance MergedWith(const Instance& other) const;

  /// Keeps only the relations named in `sig` (the restriction used by the
  /// soundness half of constraint-set equivalence, paper §2).
  Instance RestrictedTo(const Signature& sig) const;

  bool operator==(const Instance& other) const {
    return relations_ == other.relations_;
  }

  std::string ToString() const;

 private:
  std::map<std::string, std::set<Tuple>> relations_;
};

}  // namespace mapcomp

#endif  // MAPCOMP_EVAL_INSTANCE_H_
