#ifndef MAPCOMP_EVAL_INSTANCE_H_
#define MAPCOMP_EVAL_INSTANCE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "src/algebra/value.h"
#include "src/constraints/signature.h"

namespace mapcomp {

/// A database instance: relation name → finite set of tuples (paper §2).
/// `(A,B)` — the instance over σ1 ∪ σ2 formed from instances A and B — is
/// modeled by simply holding both signatures' relations in one Instance.
class Instance {
 public:
  Instance() = default;
  Instance(const Instance& other);
  Instance(Instance&& other) noexcept;
  Instance& operator=(const Instance& other);
  Instance& operator=(Instance&& other) noexcept;

  void Set(const std::string& name, std::set<Tuple> tuples);
  void Add(const std::string& name, Tuple t);
  void Clear(const std::string& name);

  /// Contents of relation `name` (empty set if absent).
  const std::set<Tuple>& Get(const std::string& name) const;

  bool Has(const std::string& name) const;
  std::vector<std::string> RelationNames() const;

  /// Total tuple count across all relations (workload sizing, reports).
  int64_t TotalTuples() const;

  /// Set of values appearing anywhere in the instance (paper §2). Computed
  /// lazily and cached — Set/Add/Clear invalidate — so repeated evaluations
  /// against one instance (the checker runs one per constraint side) pay
  /// the full scan once. Safe under concurrent readers; the reference stays
  /// valid until the next mutation, and mutating an instance while another
  /// thread evaluates against it was never supported.
  const std::set<Value>& ActiveDomain() const;

  /// Lazily-built, cached build-side join index: the permutation of
  /// Get(name)'s set-order row positions sorted by the 0-based `cols`
  /// values (CompareValues, ties by position). The permutation is id-free —
  /// it orders *values*, so one cached build serves every evaluation over
  /// this instance regardless of that evaluation's ValueDict, and repeated
  /// Satisfies/CheckComposition passes stop rebuilding identical indexes.
  /// Mirrors the ActiveDomain cache contract: Set/Add/Clear invalidate,
  /// copies and moves don't carry the cache, assignment clears it, and
  /// concurrent readers are safe (concurrent first calls build once, under
  /// the mutex). `*hit` (optional) reports whether the index was already
  /// cached, for EvalStats::index_cache_hits.
  std::shared_ptr<const std::vector<int64_t>> JoinIndex(
      const std::string& name, const std::vector<int>& cols,
      bool* hit = nullptr) const;

  /// Merges `other` into a copy of this (union of relations; shared names
  /// take the union of their tuple sets).
  Instance MergedWith(const Instance& other) const;

  /// Keeps only the relations named in `sig` (the restriction used by the
  /// soundness half of constraint-set equivalence, paper §2).
  Instance RestrictedTo(const Signature& sig) const;

  bool operator==(const Instance& other) const {
    return relations_ == other.relations_;
  }

  std::string ToString() const;

 private:
  std::map<std::string, std::set<Tuple>> relations_;
  // Lazy ActiveDomain cache. The mutex makes concurrent first reads safe
  // (the 8-thread eval stress shares one instance); mutations only happen
  // single-threaded, before evaluations start.
  mutable std::mutex adom_mutex_;
  mutable bool adom_valid_ = false;
  mutable std::set<Value> adom_cache_;
  // Lazy join-index cache (see JoinIndex). A flat vector-backed map: the
  // handful of (relation, key columns) shapes one workload probes makes a
  // linear scan cheaper than a tree or hash map.
  struct JoinIndexEntry {
    std::string relation;
    std::vector<int> cols;
    std::shared_ptr<const std::vector<int64_t>> perm;
  };
  mutable std::mutex jix_mutex_;
  mutable std::vector<JoinIndexEntry> jix_cache_;
};

}  // namespace mapcomp

#endif  // MAPCOMP_EVAL_INSTANCE_H_
