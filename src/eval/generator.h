#ifndef MAPCOMP_EVAL_GENERATOR_H_
#define MAPCOMP_EVAL_GENERATOR_H_

#include <random>

#include "src/constraints/signature.h"
#include "src/eval/instance.h"

namespace mapcomp {

/// Parameters for random instance generation (used by property tests).
struct GenOptions {
  int domain_size = 4;          ///< values drawn from integers 0..domain_size-1
  int max_tuples_per_rel = 5;   ///< uniform 0..max per relation
  bool include_strings = false; ///< also draw from a small string pool
};

/// Uniformly random instance over the signature's relations.
Instance RandomInstance(const Signature& sig, std::mt19937_64* rng,
                        const GenOptions& options = {});

/// Rejection-samples an instance satisfying `cs`; returns NotFound after
/// `attempts` failures. Useful to seed soundness property tests.
Result<Instance> RandomInstanceSatisfying(const Signature& sig,
                                          const ConstraintSet& cs,
                                          std::mt19937_64* rng, int attempts,
                                          const GenOptions& options = {});

}  // namespace mapcomp

#endif  // MAPCOMP_EVAL_GENERATOR_H_
