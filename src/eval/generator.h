#ifndef MAPCOMP_EVAL_GENERATOR_H_
#define MAPCOMP_EVAL_GENERATOR_H_

#include <random>
#include <vector>

#include "src/constraints/constraint.h"
#include "src/constraints/signature.h"
#include "src/eval/evaluator.h"
#include "src/eval/instance.h"

namespace mapcomp {

/// Parameters for random instance generation (used by property tests and
/// the compose-soundness harness).
struct GenOptions {
  int domain_size = 4;          ///< values drawn from integers 0..domain_size-1
  int max_tuples_per_rel = 5;   ///< uniform 0..max per relation
  bool include_strings = false; ///< also draw from a small string pool
};

/// Uniformly random instance over the signature's relations.
Instance RandomInstance(const Signature& sig, std::mt19937_64* rng,
                        const GenOptions& options = {});

/// Uniformly random instance spanning several signatures at once — the
/// (A,B,C) instances over σ1 ∪ σ2 ∪ σ3 the compose-soundness harness
/// evaluates both the original pipeline and the composed mapping against.
Instance RandomInstanceOver(const std::vector<const Signature*>& sigs,
                            std::mt19937_64* rng,
                            const GenOptions& options = {});

/// Rejection-samples an instance satisfying `cs`; returns NotFound after
/// `attempts` failures. Useful to seed soundness property tests.
Result<Instance> RandomInstanceSatisfying(const Signature& sig,
                                          const ConstraintSet& cs,
                                          std::mt19937_64* rng, int attempts,
                                          const GenOptions& options = {});

/// Chase-style repair: starting from `instance`, repeatedly grows every
/// relation that appears bare on the receiving side of a constraint
/// (E ⊆ R, or either side of an equality with a bare relation) with the
/// evaluation of the feeding expression, to a fixpoint. For constraint
/// sets that are monotone in the fed relations — every pipeline the
/// simulator emits — this turns an arbitrary instance into one satisfying
/// far more of `cs` than rejection sampling ever hits, which is what makes
/// the soundness harness's "original pipeline satisfied" branch non-vacuous.
/// Feed evaluations run under `options` (jobs, guards; the constraint
/// set's constants are added automatically). Returns the repaired
/// instance; feeds that fail to evaluate (e.g. Skolem without an
/// interpretation) contribute nothing.
Instance RepairTowards(const Instance& instance, const ConstraintSet& cs,
                       const EvalOptions& options = {},
                       int max_iterations = 16);

}  // namespace mapcomp

#endif  // MAPCOMP_EVAL_GENERATOR_H_
