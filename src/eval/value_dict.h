#ifndef MAPCOMP_EVAL_VALUE_DICT_H_
#define MAPCOMP_EVAL_VALUE_DICT_H_

#include <cstdint>
#include <set>
#include <unordered_map>
#include <vector>

#include "src/algebra/value.h"

namespace mapcomp {

/// Dense per-evaluation value identifier. Tuples become flat rows of these
/// (see TupleTable), so tuple comparison is integer comparison and rows have
/// no per-value heap allocation.
using ValueId = uint32_t;

/// Per-evaluation interning dictionary `Value` → dense `ValueId`.
///
/// The dictionary is seeded once with every value the evaluation can see up
/// front — the instance's active domain, the extra constants, and every
/// constant mentioned in the expressions — in sorted order, so over the
/// seeded range **id order is value order** (CompareValues): tables sorted
/// by id decode to canonically ordered tuple sets, D^r enumerated in id
/// order is already sorted, and ordered condition atoms (`<`, `>=`, ...)
/// compare ids directly.
///
/// Values minted *during* evaluation (Skolem terms, user-operator outputs)
/// are appended past the seeded range. Appended ids still satisfy
/// id equality ⇔ value equality (appends are interned), but not the order
/// guarantee — Compare() falls back to CompareValues for them. Appending is
/// not thread-safe; the kernel only interns on the calling thread.
class ValueDict {
 public:
  /// Seeds ids 0..|universe|-1 in ascending value order. Must be called
  /// once, before any Intern.
  void Seed(const std::set<Value>& universe);

  /// Returns the id of `v`, appending it (unordered range) when unknown.
  ValueId Intern(const Value& v);

  /// Returns the id of `v`, or nullptr when `v` was never interned.
  const ValueId* Find(const Value& v) const;

  const Value& ValueOf(ValueId id) const { return values_[id]; }

  /// Three-way comparison of the denoted values. Pure id comparison within
  /// the seeded (order-preserving) range; value comparison beyond it.
  int Compare(ValueId a, ValueId b) const {
    if (a == b) return 0;
    if (a < ordered_limit_ && b < ordered_limit_) return a < b ? -1 : 1;
    return CompareValues(values_[a], values_[b]);
  }

  size_t size() const { return values_.size(); }
  /// Ids below this bound are in ascending value order.
  ValueId ordered_limit() const { return ordered_limit_; }

 private:
  std::vector<Value> values_;
  std::unordered_map<Value, ValueId, ValueHash> index_;
  ValueId ordered_limit_ = 0;
};

}  // namespace mapcomp

#endif  // MAPCOMP_EVAL_VALUE_DICT_H_
