#ifndef MAPCOMP_EVAL_VALUE_DICT_H_
#define MAPCOMP_EVAL_VALUE_DICT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <unordered_map>
#include <vector>

#include "src/algebra/value.h"

namespace mapcomp {

/// Dense per-evaluation value identifier. Tuples become flat rows of these
/// (see TupleTable), so tuple comparison is integer comparison and rows have
/// no per-value heap allocation.
using ValueId = uint32_t;

/// Per-evaluation interning dictionary `Value` → dense `ValueId`.
///
/// The dictionary is seeded once with every value the evaluation can see up
/// front — the instance's active domain, the extra constants, and every
/// constant mentioned in the expressions — in sorted order, so over the
/// seeded range **id order is value order** (CompareValues): tables sorted
/// by id decode to canonically ordered tuple sets, D^r enumerated in id
/// order is already sorted, and ordered condition atoms (`<`, `>=`, ...)
/// compare ids directly.
///
/// Values minted *during* evaluation (Skolem terms, user-operator outputs)
/// are appended past the seeded range. Appended ids still satisfy
/// id equality ⇔ value equality (appends are interned), but not the order
/// guarantee — Compare() falls back to CompareValues for them.
///
/// Concurrency: the seeded tier is immutable after Seed and read lock-free.
/// Minting is serialized by a mutex, and minted values live in fixed-size
/// chunks whose pointers are published with release stores — so ValueOf and
/// Compare are safe from any task that learned the id through a scheduler
/// happens-before edge (a task-graph dependency or ParallelFor join), which
/// is the only way ids travel between lanes. Under concurrent minting the
/// *assignment* of minted ids is schedule-dependent, but harmless: within
/// one dictionary id equality still means value equality, and every result
/// surface (ToSet, Fingerprint, sorted tables) re-canonicalizes by value.
class ValueDict {
 public:
  ValueDict() = default;
  ValueDict(const ValueDict&) = delete;
  ValueDict& operator=(const ValueDict&) = delete;
  ~ValueDict();

  /// Seeds ids 0..|universe|-1 in ascending value order. Must be called
  /// once, before any Intern, from a single thread.
  void Seed(const std::set<Value>& universe);

  /// Returns the id of `v`, appending it (unordered range) when unknown.
  /// Thread-safe after Seed.
  ValueId Intern(const Value& v);

  /// Returns the id of `v`, or nullptr when `v` was never interned. The
  /// pointer stays valid for the dictionary's lifetime.
  const ValueId* Find(const Value& v) const;

  const Value& ValueOf(ValueId id) const {
    if (id < ordered_limit_) return seeded_[id];
    const uint32_t off = id - ordered_limit_;
    const Value* chunk =
        mint_chunks_[off / kMintChunk].load(std::memory_order_acquire);
    return chunk[off % kMintChunk];
  }

  /// Three-way comparison of the denoted values. Pure id comparison within
  /// the seeded (order-preserving) range; value comparison beyond it.
  int Compare(ValueId a, ValueId b) const {
    if (a == b) return 0;
    if (a < ordered_limit_ && b < ordered_limit_) return a < b ? -1 : 1;
    return CompareValues(ValueOf(a), ValueOf(b));
  }

  size_t size() const {
    return seeded_.size() + mint_count_.load(std::memory_order_acquire);
  }
  /// Ids below this bound are in ascending value order.
  ValueId ordered_limit() const { return ordered_limit_; }

 private:
  /// Minted values are stored in chunks so already-published ids are never
  /// relocated by later growth (vector reallocation would race ValueOf).
  static constexpr uint32_t kMintChunk = 4096;
  static constexpr uint32_t kMaxMintChunks = 4096;  // ~16.7M minted values

  void EnsureMintChunksLocked();

  // Immutable after Seed: lock-free tier.
  std::vector<Value> seeded_;
  std::unordered_map<Value, ValueId, ValueHash> seeded_index_;
  ValueId ordered_limit_ = 0;

  // Minted overflow tier, guarded by mint_mu_ for writers.
  mutable std::mutex mint_mu_;
  std::unordered_map<Value, ValueId, ValueHash> mint_index_;
  std::unique_ptr<std::atomic<Value*>[]> mint_chunks_;
  std::atomic<uint32_t> mint_count_{0};
};

}  // namespace mapcomp

#endif  // MAPCOMP_EVAL_VALUE_DICT_H_
