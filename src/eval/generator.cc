#include "src/eval/generator.h"

#include "src/common/rand.h"
#include "src/eval/checker.h"
#include "src/eval/materialize.h"

namespace mapcomp {

namespace {

void FillRandom(const Signature& sig, std::mt19937_64* rng,
                const GenOptions& options, Instance* out) {
  static const char* kStrings[] = {"a", "b", "c"};
  // Draws go through the shared rnd::UniformIndex helper (same underlying
  // distribution, so generated instances are unchanged for a given seed).
  for (const std::string& name : sig.names()) {
    int r = sig.ArityOf(name);
    int n = rnd::UniformIndex(rng, options.max_tuples_per_rel + 1);
    std::set<Tuple> tuples;
    for (int i = 0; i < n; ++i) {
      Tuple t;
      t.reserve(r);
      for (int j = 0; j < r; ++j) {
        if (options.include_strings && rnd::UniformIndex(rng, 4) == 0) {
          t.emplace_back(std::in_place_type<std::string>,
                         kStrings[rnd::UniformIndex(rng, 3)]);
        } else {
          t.emplace_back(std::in_place_type<int64_t>,
                         rnd::UniformIndex(rng, options.domain_size));
        }
      }
      tuples.insert(std::move(t));
    }
    out->Set(name, std::move(tuples));
  }
}

}  // namespace

Instance RandomInstance(const Signature& sig, std::mt19937_64* rng,
                        const GenOptions& options) {
  Instance out;
  FillRandom(sig, rng, options, &out);
  return out;
}

Instance RandomInstanceOver(const std::vector<const Signature*>& sigs,
                            std::mt19937_64* rng, const GenOptions& options) {
  Instance out;
  for (const Signature* sig : sigs) {
    if (sig != nullptr) FillRandom(*sig, rng, options, &out);
  }
  return out;
}

Result<Instance> RandomInstanceSatisfying(const Signature& sig,
                                          const ConstraintSet& cs,
                                          std::mt19937_64* rng, int attempts,
                                          const GenOptions& options) {
  for (int i = 0; i < attempts; ++i) {
    Instance candidate = RandomInstance(sig, rng, options);
    MAPCOMP_ASSIGN_OR_RETURN(bool sat, SatisfiesAll(candidate, cs));
    if (sat) return candidate;
  }
  return Status::NotFound("no satisfying instance within attempt budget");
}

Instance RepairTowards(const Instance& instance, const ConstraintSet& cs,
                       const EvalOptions& options, int max_iterations) {
  // Every bare receiving side is a feed; an equality with a bare side
  // *defines* that relation, so the repair assigns it (random extra tuples
  // would break S ⊆ E forever) while containments only grow their target.
  std::vector<RelationFeed> feeds =
      CollectFeeds(cs, /*keep=*/nullptr, /*assign_equalities=*/true);
  EvalOptions opts = options;
  std::set<Value> consts = CollectConstants(cs);
  opts.extra_constants.insert(consts.begin(), consts.end());

  Instance out = instance;
  RunFeedFixpoint(&out, feeds, opts, max_iterations, /*stats=*/nullptr);
  return out;
}

}  // namespace mapcomp
