#include "src/eval/generator.h"

#include "src/eval/checker.h"

namespace mapcomp {

Instance RandomInstance(const Signature& sig, std::mt19937_64* rng,
                        const GenOptions& options) {
  static const char* kStrings[] = {"a", "b", "c"};
  Instance out;
  std::uniform_int_distribution<int> count_dist(0,
                                                options.max_tuples_per_rel);
  std::uniform_int_distribution<int> val_dist(0, options.domain_size - 1);
  std::uniform_int_distribution<int> str_dist(0, 2);
  std::uniform_int_distribution<int> kind_dist(0, 3);
  for (const std::string& name : sig.names()) {
    int r = sig.ArityOf(name);
    int n = count_dist(*rng);
    std::set<Tuple> tuples;
    for (int i = 0; i < n; ++i) {
      Tuple t;
      t.reserve(r);
      for (int j = 0; j < r; ++j) {
        if (options.include_strings && kind_dist(*rng) == 0) {
          t.push_back(Value(std::string(kStrings[str_dist(*rng)])));
        } else {
          t.push_back(Value(int64_t{val_dist(*rng)}));
        }
      }
      tuples.insert(std::move(t));
    }
    out.Set(name, std::move(tuples));
  }
  return out;
}

Result<Instance> RandomInstanceSatisfying(const Signature& sig,
                                          const ConstraintSet& cs,
                                          std::mt19937_64* rng, int attempts,
                                          const GenOptions& options) {
  for (int i = 0; i < attempts; ++i) {
    Instance candidate = RandomInstance(sig, rng, options);
    MAPCOMP_ASSIGN_OR_RETURN(bool sat, SatisfiesAll(candidate, cs));
    if (sat) return candidate;
  }
  return Status::NotFound("no satisfying instance within attempt budget");
}

}  // namespace mapcomp
