#include "src/eval/generator.h"

#include "src/eval/checker.h"
#include "src/eval/materialize.h"

namespace mapcomp {

namespace {

void FillRandom(const Signature& sig, std::mt19937_64* rng,
                const GenOptions& options, Instance* out) {
  static const char* kStrings[] = {"a", "b", "c"};
  std::uniform_int_distribution<int> count_dist(0,
                                                options.max_tuples_per_rel);
  std::uniform_int_distribution<int> val_dist(0, options.domain_size - 1);
  std::uniform_int_distribution<int> str_dist(0, 2);
  std::uniform_int_distribution<int> kind_dist(0, 3);
  for (const std::string& name : sig.names()) {
    int r = sig.ArityOf(name);
    int n = count_dist(*rng);
    std::set<Tuple> tuples;
    for (int i = 0; i < n; ++i) {
      Tuple t;
      t.reserve(r);
      for (int j = 0; j < r; ++j) {
        if (options.include_strings && kind_dist(*rng) == 0) {
          t.emplace_back(std::in_place_type<std::string>,
                         kStrings[str_dist(*rng)]);
        } else {
          t.emplace_back(std::in_place_type<int64_t>, val_dist(*rng));
        }
      }
      tuples.insert(std::move(t));
    }
    out->Set(name, std::move(tuples));
  }
}

}  // namespace

Instance RandomInstance(const Signature& sig, std::mt19937_64* rng,
                        const GenOptions& options) {
  Instance out;
  FillRandom(sig, rng, options, &out);
  return out;
}

Instance RandomInstanceOver(const std::vector<const Signature*>& sigs,
                            std::mt19937_64* rng, const GenOptions& options) {
  Instance out;
  for (const Signature* sig : sigs) {
    if (sig != nullptr) FillRandom(*sig, rng, options, &out);
  }
  return out;
}

Result<Instance> RandomInstanceSatisfying(const Signature& sig,
                                          const ConstraintSet& cs,
                                          std::mt19937_64* rng, int attempts,
                                          const GenOptions& options) {
  for (int i = 0; i < attempts; ++i) {
    Instance candidate = RandomInstance(sig, rng, options);
    MAPCOMP_ASSIGN_OR_RETURN(bool sat, SatisfiesAll(candidate, cs));
    if (sat) return candidate;
  }
  return Status::NotFound("no satisfying instance within attempt budget");
}

Instance RepairTowards(const Instance& instance, const ConstraintSet& cs,
                       const EvalOptions& options, int max_iterations) {
  // Every bare receiving side is a feed; an equality with a bare side
  // *defines* that relation, so the repair assigns it (random extra tuples
  // would break S ⊆ E forever) while containments only grow their target.
  std::vector<RelationFeed> feeds =
      CollectFeeds(cs, /*keep=*/nullptr, /*assign_equalities=*/true);
  EvalOptions opts = options;
  std::set<Value> consts = CollectConstants(cs);
  opts.extra_constants.insert(consts.begin(), consts.end());

  Instance out = instance;
  RunFeedFixpoint(&out, feeds, opts, max_iterations, /*stats=*/nullptr);
  return out;
}

}  // namespace mapcomp
