#ifndef MAPCOMP_EVAL_MATERIALIZE_H_
#define MAPCOMP_EVAL_MATERIALIZE_H_

#include <functional>
#include <string>
#include <vector>

#include "src/constraints/constraint.h"
#include "src/eval/evaluator.h"

namespace mapcomp {

/// One feeding edge of the evaluate-and-feed fixpoint shared by
/// PopulateResiduals and RepairTowards: a constraint side that is a bare
/// relation symbol receives the evaluation of the other side. With
/// `assign` the target is replaced (an equality *defines* it); otherwise
/// it only grows.
struct RelationFeed {
  std::string target;
  ExprPtr source;
  bool assign = false;
};

/// Collects the feeds of `cs`: every containment E ⊆ R with bare R, and
/// both directions of an equality with a bare side. `keep` filters by
/// target name (null keeps all); `assign_equalities` marks equality feeds
/// as assignments instead of growths.
std::vector<RelationFeed> CollectFeeds(
    const ConstraintSet& cs,
    const std::function<bool(const std::string&)>& keep,
    bool assign_equalities);

/// Runs the feed loop on `instance` until a fixpoint or `max_iterations`:
/// each pass evaluates every feed's source against the current instance
/// and grows (or assigns) its target. Feeds that fail to evaluate (e.g.
/// Skolem without an interpretation) contribute nothing. Returns the
/// number of passes used; accumulates evaluation counters into `stats`
/// when non-null.
int RunFeedFixpoint(Instance* instance, const std::vector<RelationFeed>& feeds,
                    const EvalOptions& options, int max_iterations,
                    EvalStats* stats);

/// Outcome of populating residual intermediate relations.
struct MaterializeResult {
  Instance instance;       ///< input plus populated residuals
  bool satisfied = false;  ///< whether the full constraint set now holds
  int iterations = 0;      ///< fixpoint rounds used
  EvalStats eval_stats;    ///< aggregated over every feed evaluation
};

/// Implements the paper's §1.3 usage note for best-effort composition: "to
/// use the mapping, those non-eliminated σ2-symbols may need to be
/// populated as intermediate relations that will be discarded at the end",
/// e.g. S in  R ⊆ S, S = tc(S), S ⊆ T  is "definable as a recursive view
/// on R".
///
/// Starting from every residual relation empty, repeatedly grows each
/// residual S with the evaluation of
///   * E for every containment E ⊆ S, and
///   * E for every equality S = E or E = S,
/// until a fixpoint (or `max_iterations`). For constraints monotone in the
/// residuals — the common case, including tc — this computes the least
/// population. The result records whether the populated instance satisfies
/// the whole constraint set (it may not when residuals appear in
/// non-monotone positions).
Result<MaterializeResult> PopulateResiduals(
    const Instance& input, const ConstraintSet& constraints,
    const std::vector<std::string>& residuals,
    const EvalOptions& options = {}, int max_iterations = 64);

}  // namespace mapcomp

#endif  // MAPCOMP_EVAL_MATERIALIZE_H_
