#ifndef MAPCOMP_EVAL_MATERIALIZE_H_
#define MAPCOMP_EVAL_MATERIALIZE_H_

#include <string>
#include <vector>

#include "src/constraints/constraint.h"
#include "src/eval/evaluator.h"

namespace mapcomp {

/// Outcome of populating residual intermediate relations.
struct MaterializeResult {
  Instance instance;       ///< input plus populated residuals
  bool satisfied = false;  ///< whether the full constraint set now holds
  int iterations = 0;      ///< fixpoint rounds used
};

/// Implements the paper's §1.3 usage note for best-effort composition: "to
/// use the mapping, those non-eliminated σ2-symbols may need to be
/// populated as intermediate relations that will be discarded at the end",
/// e.g. S in  R ⊆ S, S = tc(S), S ⊆ T  is "definable as a recursive view
/// on R".
///
/// Starting from every residual relation empty, repeatedly grows each
/// residual S with the evaluation of
///   * E for every containment E ⊆ S, and
///   * E for every equality S = E or E = S,
/// until a fixpoint (or `max_iterations`). For constraints monotone in the
/// residuals — the common case, including tc — this computes the least
/// population. The result records whether the populated instance satisfies
/// the whole constraint set (it may not when residuals appear in
/// non-monotone positions).
Result<MaterializeResult> PopulateResiduals(
    const Instance& input, const ConstraintSet& constraints,
    const std::vector<std::string>& residuals,
    const EvalOptions& options = {}, int max_iterations = 64);

}  // namespace mapcomp

#endif  // MAPCOMP_EVAL_MATERIALIZE_H_
