#include "src/eval/evaluator.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/fault.h"
#include "src/eval/join.h"
#include "src/eval/tuple_table.h"
#include "src/eval/value_dict.h"
#include "src/runtime/sharding.h"
#include "src/runtime/task_dag.h"
#include "src/runtime/thread_pool.h"

namespace mapcomp {

namespace {

using eval_internal::CompiledCond;
using eval_internal::DomainSelectPlan;
using eval_internal::JoinPlan;

/// Node results are shared, not copied: the memo table and every parent
/// hold the same set/table. Treated as immutable everywhere (the pointee
/// types stay non-const only so EvaluateMany can move a root set out when
/// it is the last owner).
using TupleSetPtr = std::shared_ptr<std::set<Tuple>>;
using TablePtr = std::shared_ptr<TupleTable>;

/// Chunk boundaries are a pure function of the work size and the shared
/// runtime::kMaxShardChunks — never of the lane count — which is what
/// keeps results and stats identical at any `jobs`.
constexpr int64_t kMaxShards = runtime::kMaxShardChunks;

/// Per-node DAG bookkeeping for memo dropping: `remaining` counts the
/// parent edges (plus root occurrences) that have not consumed this node's
/// result yet; when it reaches zero the memo entry is dropped. `evaluated`
/// distinguishes computed nodes from planned-around ones (a product the
/// join planner bypassed) whose child edges must cascade on release.
struct NodeUse {
  int64_t remaining = 0;
  bool evaluated = false;
};

TupleSetPtr Own(std::set<Tuple> s) {
  return std::make_shared<std::set<Tuple>>(std::move(s));
}

TablePtr OwnTable(TupleTable t) {
  return std::make_shared<TupleTable>(std::move(t));
}

/// Deterministic approximate heap footprint of a legacy memo entry.
/// Base-relation entries are non-owning aliases into the instance and
/// count 0.
int64_t ApproxSetBytes(const std::set<Tuple>& s) {
  int64_t arity = s.empty() ? 0 : static_cast<int64_t>(s.begin()->size());
  return static_cast<int64_t>(s.size()) *
         (static_cast<int64_t>(sizeof(Tuple)) +
          arity * static_cast<int64_t>(sizeof(Value)) + 48);
}

/// Parent-edge refcounts for the whole root forest: each static child edge
/// contributes one pending consumption (roots get one extra per occurrence,
/// added by the caller).
void CountUses(const ExprPtr& e, std::unordered_map<const Expr*, NodeUse>* uses,
               std::set<const Expr*>* visited) {
  if (!visited->insert(e.get()).second) return;
  for (const ExprPtr& c : e->children()) {
    ++(*uses)[c.get()].remaining;
    CountUses(c, uses, visited);
  }
}

void CollectConditionConstants(const Condition& c, std::set<Value>* out) {
  switch (c.kind()) {
    case Condition::Kind::kAtom:
      if (!c.lhs().is_attr) out->insert(c.lhs().constant);
      if (!c.rhs().is_attr) out->insert(c.rhs().constant);
      break;
    case Condition::Kind::kAnd:
    case Condition::Kind::kOr:
    case Condition::Kind::kNot:
      for (const Condition& child : c.children()) {
        CollectConditionConstants(child, out);
      }
      break;
    default:
      break;
  }
}

/// Every constant a root expression can mention — selection-condition
/// constants and literal-relation values — goes into the dictionary seed,
/// so compiled conditions always find their constants interned and the
/// seeded range stays order-preserving.
void CollectExprConstants(const ExprPtr& e, std::set<Value>* out,
                          std::set<const Expr*>* visited) {
  if (e == nullptr || !visited->insert(e.get()).second) return;
  CollectConditionConstants(e->condition(), out);
  for (const Tuple& t : e->tuples()) {
    for (const Value& v : t) out->insert(v);
  }
  for (const ExprPtr& c : e->children()) {
    CollectExprConstants(c, out, visited);
  }
}

/// Shared guard on enumerating D^r: fails fast before any tuple is
/// enumerated, so an oversized domain surfaces as an error, never a hang.
Status CheckDomainGuard(int arity, int64_t d, double work,
                        const EvalOptions& options) {
  if (work > static_cast<double>(options.max_domain_tuples)) {
    return Status::ResourceExhausted(
        "enumerating D^" + std::to_string(arity) + " over " +
        std::to_string(d) + " values is too large");
  }
  return Status::OK();
}

/// Deterministic morsel count of an eligible sharded enumeration over `n`
/// work items: the number of contiguous chunks ShardedTransform splits it
/// into. A pure function of n and kMaxShards — never of the lane count —
/// so EvalStats::tasks_spawned is identical at any `jobs`.
int64_t MorselCount(int64_t n) {
  if (n <= 0) return 0;
  int64_t chunk = (n + kMaxShards - 1) / kMaxShards;
  return (n + chunk - 1) / chunk;
}

// --------------------------------------------------------------------------
// Legacy nested-loop path (EvalOptions::force_nested_loop) — the kernel's
// differential oracle. std::set<Tuple> end to end, products as full nested
// loops with selection applied afterwards, D^r always fully enumerated.
// --------------------------------------------------------------------------

struct EvalState {
  const Instance* instance;
  const EvalOptions* options;
  std::set<Value> domain;         ///< active domain + extra constants
  std::vector<Value> domain_vec;  ///< same values, set order
  runtime::ThreadPool* pool = nullptr;  ///< null ⇔ jobs <= 1
  int max_helpers = 0;                  ///< jobs - 1
  std::unordered_map<const Expr*, TupleSetPtr> memo_sets;
  std::unordered_map<const Expr*, NodeUse> uses;
  EvalStats stats;
  int64_t memo_bytes_live = 0;
};

int64_t EntryBytes(const Expr* e, const EvalState& st) {
  auto si = st.memo_sets.find(e);
  if (si != st.memo_sets.end()) {
    return e->kind() == ExprKind::kRelation ? 0 : ApproxSetBytes(*si->second);
  }
  return 0;
}

void AccountInsert(EvalState* st, int64_t bytes) {
  st->memo_bytes_live += bytes;
  st->stats.memo_bytes_total += bytes;
  if (st->memo_bytes_live > st->stats.memo_bytes_peak) {
    st->stats.memo_bytes_peak = st->memo_bytes_live;
  }
}

/// One parent edge (or root occurrence) of `e` is done with its result.
/// The last consumer drops the memo entry; if `e` was never computed (the
/// planner bypassed it), its own child edges are released too, so
/// grandchildren consumed directly by the planner can also be dropped.
void Consume(const Expr* e, EvalState* st) {
  NodeUse& u = st->uses[e];
  if (--u.remaining > 0) return;
  st->memo_bytes_live -= EntryBytes(e, *st);
  st->memo_sets.erase(e);
  if (!u.evaluated) {
    for (const ExprPtr& c : e->children()) Consume(c.get(), st);
  }
}

/// Applies `emit(t, out)` to every tuple of `in`. `work` is the number of
/// candidate tuples the node will enumerate (|in| for unary transforms,
/// |in|·|other| for products); when it crosses the threshold the input is
/// split into ≤ kMaxShards contiguous chunks enumerated concurrently, and
/// the per-chunk sets are merged in chunk order. The merged content is a
/// set, so it is identical whatever the chunking or lane count.
template <typename Emit>
std::set<Tuple> TransformSet(EvalState* st, const std::set<Tuple>& in,
                             int64_t work, const Emit& emit) {
  int64_t n = static_cast<int64_t>(in.size());
  bool eligible = work >= st->options->parallel_threshold;
  if (eligible) ++st->stats.sharded_nodes;
  if (!eligible || st->pool == nullptr || n <= 1) {
    std::set<Tuple> out;
    for (const Tuple& t : in) emit(t, &out);
    return out;
  }
  std::vector<const Tuple*> refs;
  refs.reserve(in.size());
  for (const Tuple& t : in) refs.push_back(&t);
  int64_t chunk = (n + kMaxShards - 1) / kMaxShards;
  std::vector<std::set<Tuple>> chunks =
      runtime::ShardedTransform<std::set<Tuple>>(
          st->pool, n, chunk, st->max_helpers,
          [&refs, &emit](int64_t begin, int64_t end) {
            std::set<Tuple> local;
            for (int64_t i = begin; i < end; ++i) emit(*refs[i], &local);
            return local;
          });
  std::set<Tuple> out;
  for (std::set<Tuple>& c : chunks) out.merge(c);
  return out;
}

/// Enumerates the r-fold product of `vals` whose first coordinate index
/// lies in [first_begin, first_end), in lexicographic order, into `out`.
void EnumerateDomainRange(const std::vector<Value>& vals, int r,
                          int64_t first_begin, int64_t first_end,
                          std::set<Tuple>* out) {
  if (first_begin >= first_end) return;
  std::vector<int64_t> idx(static_cast<size_t>(r), 0);
  idx[0] = first_begin;
  int64_t d = static_cast<int64_t>(vals.size());
  for (;;) {
    Tuple t;
    t.reserve(r);
    for (int i = 0; i < r; ++i) t.push_back(vals[idx[i]]);
    out->insert(out->end(), std::move(t));  // hint: enumeration is sorted
    int pos = r - 1;
    while (pos >= 0) {
      ++idx[pos];
      int64_t limit = pos == 0 ? first_end : d;
      if (idx[pos] < limit) break;
      if (pos == 0) return;
      idx[pos] = 0;
      --pos;
    }
  }
}

Result<TupleSetPtr> LegacyRec(const ExprPtr& e, EvalState* st);

Result<TupleSetPtr> LegacyEvalDomain(int arity, EvalState* st) {
  const std::vector<Value>& vals = st->domain_vec;
  int64_t d = static_cast<int64_t>(vals.size());
  double size = std::pow(static_cast<double>(d), static_cast<double>(arity));
  MAPCOMP_RETURN_IF_ERROR(CheckDomainGuard(arity, d, size, *st->options));
  if (arity == 0) return Own(std::set<Tuple>{Tuple{}});
  if (d == 0) return Own(std::set<Tuple>{});
  bool eligible = size >= static_cast<double>(st->options->parallel_threshold);
  if (eligible) ++st->stats.sharded_nodes;
  if (!eligible || st->pool == nullptr || d <= 1) {
    std::set<Tuple> out;
    EnumerateDomainRange(vals, arity, 0, d, &out);
    return Own(std::move(out));
  }
  // Shard over the first coordinate: chunk c enumerates the suffix product
  // under first coordinates [c·chunk, (c+1)·chunk). Chunks are disjoint and
  // lexicographically ordered, so the chunk-ordered merge is the sorted set.
  int64_t chunk = (d + kMaxShards - 1) / kMaxShards;
  std::vector<std::set<Tuple>> chunks =
      runtime::ShardedTransform<std::set<Tuple>>(
          st->pool, d, chunk, st->max_helpers,
          [&vals, arity](int64_t begin, int64_t end) {
            std::set<Tuple> local;
            EnumerateDomainRange(vals, arity, begin, end, &local);
            return local;
          });
  std::set<Tuple> out;
  for (std::set<Tuple>& c : chunks) out.merge(c);
  return Own(std::move(out));
}

Result<TupleSetPtr> LegacyEvalNode(const ExprPtr& e, EvalState* st) {
  switch (e->kind()) {
    case ExprKind::kRelation:
      // Aliased, non-owning view of the instance's own set (the instance
      // outlives the evaluation); base relations are never copied. The
      // const_cast is never written through: the only mutation anywhere is
      // EvaluateMany's final move-out, gated on use_count() == 1, which a
      // non-owning aliased pointer (use_count 0) can never satisfy.
      return TupleSetPtr(
          TupleSetPtr{},
          const_cast<std::set<Tuple>*>(&st->instance->Get(e->name())));
    case ExprKind::kDomain:
      return LegacyEvalDomain(e->arity(), st);
    case ExprKind::kEmpty:
      return Own(std::set<Tuple>{});
    case ExprKind::kLiteral: {
      std::set<Tuple> out;
      for (const Tuple& t : e->tuples()) out.insert(t);
      return Own(std::move(out));
    }
    case ExprKind::kUnion: {
      MAPCOMP_ASSIGN_OR_RETURN(TupleSetPtr a, LegacyRec(e->child(0), st));
      MAPCOMP_ASSIGN_OR_RETURN(TupleSetPtr b, LegacyRec(e->child(1), st));
      // Results are shared immutably, so a subsumed side means the union
      // IS the other side — no copy. Union(x, x), the memo-witness shape,
      // and the feed loop's re-unions all take these exits.
      if (a->empty()) return b;
      if (b->empty() || a == b) return a;
      // Shard the filter "b minus a" (the only per-tuple work); the final
      // insert of the disjoint remainder is a cheap sequential splice.
      std::set<Tuple> extra = TransformSet(
          st, *b, static_cast<int64_t>(b->size()),
          [&a](const Tuple& t, std::set<Tuple>* out) {
            if (a->count(t) == 0) out->insert(t);
          });
      if (extra.empty()) return a;  // b ⊆ a
      std::set<Tuple> out = *a;
      out.merge(extra);
      return Own(std::move(out));
    }
    case ExprKind::kIntersect: {
      MAPCOMP_ASSIGN_OR_RETURN(TupleSetPtr a, LegacyRec(e->child(0), st));
      MAPCOMP_ASSIGN_OR_RETURN(TupleSetPtr b, LegacyRec(e->child(1), st));
      return Own(TransformSet(st, *a, static_cast<int64_t>(a->size()),
                              [&b](const Tuple& t, std::set<Tuple>* out) {
                                if (b->count(t) > 0) out->insert(t);
                              }));
    }
    case ExprKind::kDifference: {
      MAPCOMP_ASSIGN_OR_RETURN(TupleSetPtr a, LegacyRec(e->child(0), st));
      MAPCOMP_ASSIGN_OR_RETURN(TupleSetPtr b, LegacyRec(e->child(1), st));
      return Own(TransformSet(st, *a, static_cast<int64_t>(a->size()),
                              [&b](const Tuple& t, std::set<Tuple>* out) {
                                if (b->count(t) == 0) out->insert(t);
                              }));
    }
    case ExprKind::kProduct: {
      MAPCOMP_ASSIGN_OR_RETURN(TupleSetPtr a, LegacyRec(e->child(0), st));
      MAPCOMP_ASSIGN_OR_RETURN(TupleSetPtr b, LegacyRec(e->child(1), st));
      ++st->stats.nested_product_nodes;
      int64_t work = static_cast<int64_t>(a->size()) *
                     static_cast<int64_t>(b->size());
      return Own(TransformSet(st, *a, work,
                              [&b](const Tuple& ta, std::set<Tuple>* out) {
                                for (const Tuple& tb : *b) {
                                  Tuple t = ta;
                                  t.insert(t.end(), tb.begin(), tb.end());
                                  out->insert(std::move(t));
                                }
                              }));
    }
    case ExprKind::kSelect: {
      MAPCOMP_ASSIGN_OR_RETURN(TupleSetPtr a, LegacyRec(e->child(0), st));
      const Condition& cond = e->condition();
      return Own(TransformSet(st, *a, static_cast<int64_t>(a->size()),
                              [&cond](const Tuple& t, std::set<Tuple>* out) {
                                if (cond.Eval(t)) out->insert(t);
                              }));
    }
    case ExprKind::kProject: {
      MAPCOMP_ASSIGN_OR_RETURN(TupleSetPtr a, LegacyRec(e->child(0), st));
      const std::vector<int>& indexes = e->indexes();
      return Own(TransformSet(st, *a, static_cast<int64_t>(a->size()),
                              [&indexes](const Tuple& t,
                                         std::set<Tuple>* out) {
                                Tuple p;
                                p.reserve(indexes.size());
                                for (int i : indexes) p.push_back(t[i - 1]);
                                out->insert(std::move(p));
                              }));
    }
    case ExprKind::kSkolem: {
      if (st->options->skolem_mode == SkolemEvalMode::kError) {
        return Status::Unsupported(
            "cannot evaluate Skolem function " + e->name() +
            " without an interpretation (SkolemEvalMode::kError)");
      }
      MAPCOMP_ASSIGN_OR_RETURN(TupleSetPtr a, LegacyRec(e->child(0), st));
      const std::string& name = e->name();
      const std::vector<int>& indexes = e->indexes();
      return Own(TransformSet(
          st, *a, static_cast<int64_t>(a->size()),
          [&name, &indexes](const Tuple& t, std::set<Tuple>* out) {
            std::string term = name + "(";
            for (size_t i = 0; i < indexes.size(); ++i) {
              if (i > 0) term += ",";
              term += ValueToString(t[indexes[i] - 1]);
            }
            term += ")";
            Tuple extended = t;
            extended.push_back(Value(std::move(term)));
            out->insert(std::move(extended));
          }));
    }
    case ExprKind::kUserOp: {
      const op::OperatorDef* def =
          st->options->registry ? st->options->registry->Find(e->name())
                                : nullptr;
      if (def == nullptr || !def->eval) {
        return Status::Unsupported("no evaluator for operator " + e->name());
      }
      // Child results are borrowed, never copied: the shared_ptrs keep
      // them alive (and the memo may serve them to other parents).
      std::vector<TupleSetPtr> owners;
      std::vector<const std::set<Tuple>*> kids;
      owners.reserve(e->children().size());
      kids.reserve(e->children().size());
      for (const ExprPtr& c : e->children()) {
        MAPCOMP_ASSIGN_OR_RETURN(TupleSetPtr k, LegacyRec(c, st));
        kids.push_back(k.get());
        owners.push_back(std::move(k));
      }
      op::EvalContext ctx;
      ctx.active_domain = &st->domain;
      // The oracle is the set-based path by definition: every user op
      // counts as a decode fallback, never as a columnar kernel.
      ++st->stats.user_op_decode_fallback;
      MAPCOMP_ASSIGN_OR_RETURN(std::set<Tuple> out, def->eval(*e, kids, ctx));
      return Own(std::move(out));
    }
  }
  return Status::Internal("unknown expression kind");
}

Result<TupleSetPtr> LegacyRec(const ExprPtr& e, EvalState* st) {
  // Node-boundary cancellation point, mirroring the kernel's slot polls.
  MAPCOMP_RETURN_IF_ERROR(st->options->cancel.StatusAt("eval node"));
  // Interned nodes make the memo exact: pointer equality ⇔ structural
  // equality, so a subtree shared k times in the DAG is computed once.
  auto it = st->memo_sets.find(e.get());
  if (it != st->memo_sets.end()) {
    ++st->stats.memo_hits;
    return it->second;
  }
  MAPCOMP_ASSIGN_OR_RETURN(TupleSetPtr out, LegacyEvalNode(e, st));
  st->uses[e.get()].evaluated = true;
  ++st->stats.nodes_evaluated;
  st->stats.tuples_produced += static_cast<int64_t>(out->size());
  st->memo_sets.emplace(e.get(), out);
  AccountInsert(st, e->kind() == ExprKind::kRelation ? 0
                                                     : ApproxSetBytes(*out));
  // This node's computation is the one-and-only traversal of its static
  // child edges — release them now so fully-consumed children drop out of
  // the memo.
  for (const ExprPtr& c : e->children()) Consume(c.get(), st);
  return out;
}

Status LegacyInit(EvalState* st, const std::vector<ExprPtr>& roots,
                  const Instance& instance, const EvalOptions& options) {
  for (const ExprPtr& root : roots) {
    if (root == nullptr) return Status::InvalidArgument("null expression");
  }
  st->instance = &instance;
  st->options = &options;
  st->domain = instance.ActiveDomain();
  st->domain.insert(options.extra_constants.begin(),
                    options.extra_constants.end());
  st->domain_vec.assign(st->domain.begin(), st->domain.end());
  if (options.jobs > 1) {
    st->pool = runtime::GlobalPool();
    st->max_helpers = options.jobs - 1;
  }
  std::set<const Expr*> counted;
  for (const ExprPtr& root : roots) {
    ++st->uses[root.get()].remaining;
    CountUses(root, &st->uses, &counted);
  }
  return Status::OK();
}

// --------------------------------------------------------------------------
// Columnar kernel path — a morsel-driven task graph over the interned DAG.
//
// Evaluation runs in three phases:
//
//   1. PLAN (sequential): walk the DAG exactly like the old recursive
//      evaluator walked it — same memoization, same join/domain planning,
//      same refcount-driven drop cascade, same guard checks — but instead
//      of computing tables, record one `Slot` per node to compute and an
//      event log of what the walk observed (evals, memo hits, memo drops,
//      index-cache probes, root boundaries). Everything schedule-sensitive
//      (which nodes run, which products are bypassed, condition
//      compilation / constant interning, error precedence for guards) is
//      decided here, on one thread.
//
//   2. EXECUTE (parallel): each slot becomes a TaskDag task depending on
//      its input slots, so sibling subtrees, multiple EvaluateMany roots,
//      and — via nested sharding inside a slot — hash-join probe morsels
//      all interleave on the same lanes. A slot's output depends only on
//      its input tables, so lane count decides who computes a slot, never
//      what lands in it. A slot's table is dropped the moment its last
//      consumer retires (atomic refcount), preserving the memo-peak
//      behavior of the recursive engine.
//
//   3. REPLAY (sequential): walk the plan's event log and fold each slot's
//      measured outputs (row counts, bytes, morsel counts) into per-root
//      EvalStats buckets in plan order. Stats are therefore byte-identical
//      at any lane count, including the memo_bytes_peak watermark.
// --------------------------------------------------------------------------

/// What a slot computes. kSelect* split the old select dispatch: the
/// planner resolves the strategy (join vs. domain-prune vs. plain filter)
/// at plan time, so execution is branch-free on expression structure.
enum class SlotOp {
  kRelation,
  kDomain,
  kEmpty,
  kLiteral,
  kUnion,
  kIntersect,
  kDifference,
  kProduct,
  kSelectFilter,
  kSelectJoin,
  kSelectDomain,
  kSelectDomainEmpty,
  kProject,
  kSkolem,
  kUserOp,
};

/// One task-graph node. Plan-time fields are written by the planner and
/// read-only during execution; execution fields are written only by the
/// slot's own task (its inputs' fields are complete via the dag edge).
struct Slot {
  const Expr* node = nullptr;
  SlotOp op = SlotOp::kEmpty;
  int arity = 0;
  /// Input slot indexes in operator order (may repeat, e.g. Union(x, x)).
  std::vector<int64_t> args;

  // kSelectFilter / kSelectDomain: the full compiled condition. Also the
  // kUserOp columnar payload: the node's condition compiled at plan time,
  // handed to the kernel via ColumnarContext.
  CompiledCond cond;
  // kSelectJoin payload (PlanJoin results, compiled at plan time).
  bool left_filter_true = true;
  bool right_filter_true = true;
  CompiledCond left_cc, right_cc, residual_cc;
  std::vector<std::pair<int, int>> keys;
  /// Cached build-side index (Instance::JoinIndex) when one join input is a
  /// bare, unfiltered relation; null means build a hash index per run.
  std::shared_ptr<const std::vector<int64_t>> build_perm;
  bool build_perm_left = false;
  // kSelectDomain payload (bound-class analysis resolved at plan time).
  std::vector<int> class_of;
  std::vector<ValueId> class_id;
  std::vector<char> class_bound;
  std::vector<int> free_slot;
  int free_count = 0;
  // kUserOp payload. `user_columnar` is a plan-time routing decision (the
  // registered hooks, never lane usage), so the replayed columnar/fallback
  // counters are lane-count-independent like everything else.
  const op::OperatorDef* def = nullptr;
  bool user_columnar = false;

  // Execution outputs.
  TablePtr result;
  Status status = Status::OK();
  /// Consumers (distinct dependent slots, +1 pin per root occurrence) that
  /// have not retired yet; the decrement to zero drops `result`.
  std::atomic<int64_t> live_consumers{0};
  // Measured replay payload: the stats deltas this slot's evaluation
  // contributes, folded into per-root buckets in plan order afterwards.
  int64_t bytes = 0;
  int64_t d_tuples = 0;
  int64_t d_sharded = 0;
  int64_t d_hash_join = 0;
  int64_t d_nested = 0;
  int64_t d_tasks = 0;  ///< morsel tasks beyond the node task itself
};

/// One observation of the sequential plan walk. Replayed in order against
/// the slots' measured outputs to reconstruct per-root stats.
struct PlanEvent {
  enum Kind { kEval, kHit, kDrop, kIndexHit, kIndexMiss, kRootEnd } kind;
  int64_t slot = -1;
};

struct KernelState {
  const Instance* instance = nullptr;
  const EvalOptions* options = nullptr;
  /// Shared so results can outlive the evaluation (lazy decode).
  std::shared_ptr<ValueDict> dict;
  /// Active domain + extra constants as ascending seeded ids — the only
  /// eagerly built domain structure. The decoded `std::set<Value>` form
  /// exists solely for legacy set-based user operators and is built lazily
  /// (see FallbackDomain): an evaluation whose user ops all run columnar —
  /// or that has none — never pays for the copy.
  std::vector<ValueId> domain_ids;
  runtime::ThreadPool* pool = nullptr;  ///< null ⇔ jobs <= 1
  int max_helpers = 0;                  ///< jobs - 1

  // Plan state.
  std::unordered_map<const Expr*, NodeUse> uses;
  std::unordered_map<const Expr*, int64_t> slot_of;
  /// deque: slots hold atomics/compiled conditions and must never move.
  std::deque<Slot> slots;
  std::vector<PlanEvent> events;
  std::vector<int64_t> root_slots;
  /// max_ready_depth watermark at each root boundary (cumulative, like
  /// memo_bytes_peak).
  std::vector<int64_t> root_width;
  std::vector<int> slot_depth;  ///< longest input chain per slot
  std::unordered_map<int, int64_t> width_at_depth;
  int64_t max_width = 0;

  // Execution state: decoded child sets served to legacy set-based
  // user-operator evaluators, cached per input slot (a child feeding
  // several user ops decodes once even when those ops run on different
  // lanes). Stays empty when every user op takes the columnar path — the
  // no-decode-seam witness pinned by user_op_decode_fallback == 0.
  std::mutex decode_mu;
  std::unordered_map<int64_t, TupleSetPtr> decoded;
  /// Lazily decoded EvalContext::active_domain for the same fallback path.
  std::unique_ptr<std::set<Value>> fallback_domain;
};

/// Decodes domain_ids into the std::set<Value> form legacy set-based user
/// operators expect, once per evaluation, under decode_mu. domain_ids is
/// ascending over seeded ids, whose order is the value order — so the
/// end-hinted inserts are O(1) amortized.
const std::set<Value>& FallbackDomain(KernelState* ks) {
  std::lock_guard<std::mutex> lock(ks->decode_mu);
  if (ks->fallback_domain == nullptr) {
    auto d = std::make_unique<std::set<Value>>();
    for (ValueId id : ks->domain_ids) {
      d->insert(d->end(), ks->dict->ValueOf(id));
    }
    ks->fallback_domain = std::move(d);
  }
  return *ks->fallback_domain;
}

/// Plan-time mirror of Consume: decrements the pending-edge count and, at
/// zero, records the memo drop (replay subtracts the slot's measured bytes
/// at this exact point in plan order) and cascades through bypassed nodes.
void SimConsume(const Expr* e, KernelState* ks) {
  NodeUse& u = ks->uses[e];
  if (--u.remaining > 0) return;
  auto it = ks->slot_of.find(e);
  if (it != ks->slot_of.end()) {
    ks->events.push_back({PlanEvent::kDrop, it->second});
  }
  if (!u.evaluated) {
    for (const ExprPtr& c : e->children()) SimConsume(c.get(), ks);
  }
}

int64_t NewSlot(const Expr* node, SlotOp op, int arity,
                std::vector<int64_t> args, KernelState* ks) {
  int depth = 0;
  for (int64_t a : args) {
    depth = std::max(depth, ks->slot_depth[static_cast<size_t>(a)] + 1);
  }
  ks->slots.emplace_back();
  Slot& s = ks->slots.back();
  s.node = node;
  s.op = op;
  s.arity = arity;
  s.args = std::move(args);
  ks->slot_depth.push_back(depth);
  int64_t width = ++ks->width_at_depth[depth];
  ks->max_width = std::max(ks->max_width, width);
  return static_cast<int64_t>(ks->slots.size()) - 1;
}

/// Seals a planned node: marks it evaluated (the plan's memo), logs the
/// eval event, and releases its static child edges — exactly where the
/// recursive engine released them.
void FinishSlot(const Expr* e, int64_t slot, KernelState* ks) {
  ks->slot_of[e] = slot;
  ks->uses[e].evaluated = true;
  ks->events.push_back({PlanEvent::kEval, slot});
  for (const ExprPtr& c : e->children()) SimConsume(c.get(), ks);
}

Result<int64_t> PlanVisit(const ExprPtr& e, KernelState* ks);

/// select(product(a, b)): pushes single-side conjuncts below the product,
/// turns cross-side equalities into hash-join keys, and keeps the rest as a
/// residual filter on joined rows. The product child itself is never
/// materialized (its memo refcount is released through the bypass cascade).
/// When one join input is a bare relation with no pushed-down side filter,
/// the instance's cached build-side index replaces the per-run hash build.
Result<int64_t> PlanSelectJoin(const ExprPtr& e, KernelState* ks) {
  const ExprPtr& prod = e->child(0);
  const ExprPtr& left = prod->child(0);
  const ExprPtr& right = prod->child(1);
  JoinPlan plan = eval_internal::PlanJoin(e->condition(), left->arity(),
                                          right->arity());
  MAPCOMP_ASSIGN_OR_RETURN(int64_t a, PlanVisit(left, ks));
  MAPCOMP_ASSIGN_OR_RETURN(int64_t b, PlanVisit(right, ks));
  int64_t slot = NewSlot(e.get(), SlotOp::kSelectJoin, e->arity(), {a, b}, ks);
  Slot& s = ks->slots[static_cast<size_t>(slot)];
  s.left_filter_true = plan.left_filter.IsTrue();
  s.right_filter_true = plan.right_filter.IsTrue();
  if (!s.left_filter_true) {
    s.left_cc = CompiledCond::Compile(plan.left_filter, ks->dict.get());
  }
  if (!s.right_filter_true) {
    s.right_cc = CompiledCond::Compile(plan.right_filter, ks->dict.get());
  }
  s.residual_cc = CompiledCond::Compile(plan.residual, ks->dict.get());
  s.keys = plan.keys;
  if (!s.keys.empty()) {
    // Index-cache eligibility: the build side must be exactly the relation
    // encoding in set order (table row i == set element i), i.e. a bare
    // kRelation input with no pushed-down side filter. Prefer the smaller
    // relation as the build side (ties go left), like the hash build.
    bool left_ok =
        left->kind() == ExprKind::kRelation && s.left_filter_true;
    bool right_ok =
        right->kind() == ExprKind::kRelation && s.right_filter_true;
    if (left_ok && right_ok) {
      if (ks->instance->Get(right->name()).size() <
          ks->instance->Get(left->name()).size()) {
        left_ok = false;
      } else {
        right_ok = false;
      }
    }
    if (left_ok || right_ok) {
      const ExprPtr& rel = left_ok ? left : right;
      std::vector<int> cols;
      cols.reserve(s.keys.size());
      for (const std::pair<int, int>& k : s.keys) {
        cols.push_back((left_ok ? k.first : k.second) - 1);
      }
      bool was_hit = false;
      s.build_perm = ks->instance->JoinIndex(rel->name(), cols, &was_hit);
      s.build_perm_left = left_ok;
      ks->events.push_back(
          {was_hit ? PlanEvent::kIndexHit : PlanEvent::kIndexMiss, slot});
    }
  }
  FinishSlot(e.get(), slot, ks);
  return slot;
}

/// select(D^r) with bound coordinates: resolves the equality-class pins at
/// plan time (a pin outside D makes the result empty with no enumeration;
/// the guard measures the *pruned* space |D|^free_classes) and stores the
/// class layout for the execution odometer.
Result<int64_t> PlanSelectDomain(const ExprPtr& e, const DomainSelectPlan& plan,
                                 KernelState* ks) {
  const int r = e->child(0)->arity();
  const std::vector<ValueId>& ids = ks->domain_ids;
  int64_t d = static_cast<int64_t>(ids.size());
  std::vector<ValueId> class_id(static_cast<size_t>(plan.num_classes), 0);
  std::vector<char> class_bound(static_cast<size_t>(plan.num_classes), 0);
  std::vector<int> free_slot(static_cast<size_t>(plan.num_classes), -1);
  int free_count = 0;
  for (int c = 0; c < plan.num_classes; ++c) {
    if (plan.class_const[static_cast<size_t>(c)]) {
      const ValueId* id =
          ks->dict->Find(*plan.class_const[static_cast<size_t>(c)]);
      // D^r only contains domain values: a coordinate pinned to a constant
      // outside D makes the selection empty without enumerating anything.
      if (id == nullptr ||
          !std::binary_search(ids.begin(), ids.end(), *id)) {
        int64_t slot =
            NewSlot(e.get(), SlotOp::kSelectDomainEmpty, e->arity(), {}, ks);
        FinishSlot(e.get(), slot, ks);
        return slot;
      }
      class_id[static_cast<size_t>(c)] = *id;
      class_bound[static_cast<size_t>(c)] = 1;
    } else {
      free_slot[static_cast<size_t>(c)] = free_count++;
    }
  }
  double size = std::pow(static_cast<double>(d),
                         static_cast<double>(free_count));
  // The guard measures the *pruned* enumeration — the whole point of the
  // constraint-driven path (the nested-loop oracle still guards |D|^r) —
  // and the diagnostic reports that pruned work, not |D|^r.
  if (size > static_cast<double>(ks->options->max_domain_tuples)) {
    return Status::ResourceExhausted(
        "constraint-pruned enumeration of sigma(D^" + std::to_string(r) +
        ") over " + std::to_string(d) + " values still needs " +
        std::to_string(free_count) +
        " free coordinate classes — too large");
  }
  int64_t slot = NewSlot(e.get(), SlotOp::kSelectDomain, e->arity(), {}, ks);
  Slot& s = ks->slots[static_cast<size_t>(slot)];
  s.cond = CompiledCond::Compile(e->condition(), ks->dict.get());
  s.class_of = plan.class_of;
  s.class_id = std::move(class_id);
  s.class_bound = std::move(class_bound);
  s.free_slot = std::move(free_slot);
  s.free_count = free_count;
  FinishSlot(e.get(), slot, ks);
  return slot;
}

/// The plan walk — one-to-one with the old KernelRec recursion: same visit
/// order, same memo discipline (`evaluated` ⇔ "in the memo", since a memo
/// entry is never dropped while a parent edge is pending), same strategy
/// decisions, same guard checks in the same order. Returns the slot whose
/// result is node `e`'s table.
Result<int64_t> PlanVisit(const ExprPtr& e, KernelState* ks) {
  NodeUse& u = ks->uses[e.get()];
  if (u.evaluated) {
    int64_t slot = ks->slot_of[e.get()];
    ks->events.push_back({PlanEvent::kHit, slot});
    return slot;
  }
  switch (e->kind()) {
    case ExprKind::kRelation: {
      int64_t slot = NewSlot(e.get(), SlotOp::kRelation, e->arity(), {}, ks);
      FinishSlot(e.get(), slot, ks);
      return slot;
    }
    case ExprKind::kDomain: {
      int64_t d = static_cast<int64_t>(ks->domain_ids.size());
      double size = std::pow(static_cast<double>(d),
                             static_cast<double>(e->arity()));
      MAPCOMP_RETURN_IF_ERROR(
          CheckDomainGuard(e->arity(), d, size, *ks->options));
      int64_t slot = NewSlot(e.get(), SlotOp::kDomain, e->arity(), {}, ks);
      FinishSlot(e.get(), slot, ks);
      return slot;
    }
    case ExprKind::kEmpty: {
      int64_t slot = NewSlot(e.get(), SlotOp::kEmpty, e->arity(), {}, ks);
      FinishSlot(e.get(), slot, ks);
      return slot;
    }
    case ExprKind::kLiteral: {
      int64_t slot = NewSlot(e.get(), SlotOp::kLiteral, e->arity(), {}, ks);
      FinishSlot(e.get(), slot, ks);
      return slot;
    }
    case ExprKind::kUnion:
    case ExprKind::kIntersect:
    case ExprKind::kDifference:
    case ExprKind::kProduct: {
      MAPCOMP_ASSIGN_OR_RETURN(int64_t a, PlanVisit(e->child(0), ks));
      MAPCOMP_ASSIGN_OR_RETURN(int64_t b, PlanVisit(e->child(1), ks));
      SlotOp op = SlotOp::kUnion;
      if (e->kind() == ExprKind::kIntersect) op = SlotOp::kIntersect;
      if (e->kind() == ExprKind::kDifference) op = SlotOp::kDifference;
      if (e->kind() == ExprKind::kProduct) op = SlotOp::kProduct;
      int64_t slot = NewSlot(e.get(), op, e->arity(), {a, b}, ks);
      FinishSlot(e.get(), slot, ks);
      return slot;
    }
    case ExprKind::kSelect: {
      const ExprPtr& child = e->child(0);
      // Plan the join only while the product is unmaterialized: a product
      // another parent already evaluated (it stays memoized as long as this
      // select's edge is pending) is cheaper to filter than to re-join —
      // its children may already have been refcount-dropped.
      if (child->kind() == ExprKind::kProduct &&
          !ks->uses[child.get()].evaluated) {
        return PlanSelectJoin(e, ks);
      }
      if (child->kind() == ExprKind::kDomain) {
        DomainSelectPlan plan =
            eval_internal::PlanDomainSelect(e->condition(), child->arity());
        if (plan.unsatisfiable) {
          int64_t slot =
              NewSlot(e.get(), SlotOp::kSelectDomainEmpty, e->arity(), {}, ks);
          FinishSlot(e.get(), slot, ks);
          return slot;
        }
        if (plan.useful) return PlanSelectDomain(e, plan, ks);
        // Nothing to prune — evaluate D^r normally so it stays memoized.
      }
      MAPCOMP_ASSIGN_OR_RETURN(int64_t a, PlanVisit(child, ks));
      int64_t slot =
          NewSlot(e.get(), SlotOp::kSelectFilter, e->arity(), {a}, ks);
      ks->slots[static_cast<size_t>(slot)].cond =
          CompiledCond::Compile(e->condition(), ks->dict.get());
      FinishSlot(e.get(), slot, ks);
      return slot;
    }
    case ExprKind::kProject: {
      MAPCOMP_ASSIGN_OR_RETURN(int64_t a, PlanVisit(e->child(0), ks));
      int64_t slot = NewSlot(e.get(), SlotOp::kProject, e->arity(), {a}, ks);
      FinishSlot(e.get(), slot, ks);
      return slot;
    }
    case ExprKind::kSkolem: {
      if (ks->options->skolem_mode == SkolemEvalMode::kError) {
        return Status::Unsupported(
            "cannot evaluate Skolem function " + e->name() +
            " without an interpretation (SkolemEvalMode::kError)");
      }
      MAPCOMP_ASSIGN_OR_RETURN(int64_t a, PlanVisit(e->child(0), ks));
      int64_t slot = NewSlot(e.get(), SlotOp::kSkolem, e->arity(), {a}, ks);
      FinishSlot(e.get(), slot, ks);
      return slot;
    }
    case ExprKind::kUserOp: {
      const op::OperatorDef* def =
          ks->options->registry ? ks->options->registry->Find(e->name())
                                : nullptr;
      if (def == nullptr || (!def->eval_columnar && !def->eval)) {
        return Status::Unsupported("no evaluator for operator " + e->name());
      }
      std::vector<int64_t> args;
      args.reserve(e->children().size());
      for (const ExprPtr& c : e->children()) {
        MAPCOMP_ASSIGN_OR_RETURN(int64_t a, PlanVisit(c, ks));
        args.push_back(a);
      }
      int64_t slot =
          NewSlot(e.get(), SlotOp::kUserOp, e->arity(), std::move(args), ks);
      Slot& s = ks->slots[static_cast<size_t>(slot)];
      s.def = def;
      if (def->eval_columnar) {
        // Columnar route, decided at plan time. The node's condition is
        // compiled here (sequential phase — constants intern into the
        // still-warm dictionary) so every lane shares one compiled form.
        s.user_columnar = true;
        s.cond = CompiledCond::Compile(e->condition(), ks->dict.get());
      }
      FinishSlot(e.get(), slot, ks);
      return slot;
    }
  }
  return Status::Internal("unknown expression kind");
}

/// Execution sibling of TransformSet: applies `emit(row, out_data)` — which
/// appends whole rows of `out_arity` ids — to every row of `in`, sharded
/// into ≤ kMaxShards contiguous row chunks when `work` crosses the
/// threshold, concatenated in chunk order. Counters (sharded eligibility,
/// morsel count) go to the slot and depend only on the data. Requires
/// out_arity > 0 (callers special-case the degenerate arity-0 shapes).
template <typename Emit>
TupleTable SlotTransform(KernelState* ks, Slot* s, const TupleTable& in,
                         int64_t work, int out_arity, const Emit& emit) {
  int64_t n = in.size();
  bool eligible = work >= ks->options->parallel_threshold;
  if (eligible) {
    ++s->d_sharded;
    s->d_tasks += MorselCount(n);
  }
  TupleTable out(out_arity);
  if (!eligible || ks->pool == nullptr || n <= 1) {
    for (int64_t i = 0; i < n; ++i) emit(in.Row(i), &out.MutableData());
    out.FinishAppends();
    return out;
  }
  int64_t chunk = (n + kMaxShards - 1) / kMaxShards;
  std::vector<std::vector<ValueId>> chunks =
      runtime::ShardedTransform<std::vector<ValueId>>(
          ks->pool, n, chunk, ks->max_helpers,
          [ks, &in, &emit](int64_t begin, int64_t end) {
            std::vector<ValueId> local;
            // Chunk-boundary cancellation point: an empty early-out is safe
            // because RunSlot's exit poll discards the whole slot.
            if (ks->options->cancel.Fired()) return local;
            for (int64_t i = begin; i < end; ++i) emit(in.Row(i), &local);
            return local;
          });
  std::vector<ValueId>& data = out.MutableData();
  for (const std::vector<ValueId>& c : chunks) {
    data.insert(data.end(), c.begin(), c.end());
  }
  out.FinishAppends();
  return out;
}

/// Enumerates domain_ids^r with the first coordinate position restricted to
/// [first_begin, first_end), in lexicographic id order (domain_ids is
/// ascending, so the output rows are sorted).
void EnumerateDomainIdRange(const std::vector<ValueId>& ids, int r,
                            int64_t first_begin, int64_t first_end,
                            std::vector<ValueId>* out) {
  if (first_begin >= first_end) return;
  std::vector<int64_t> idx(static_cast<size_t>(r), 0);
  idx[0] = first_begin;
  int64_t d = static_cast<int64_t>(ids.size());
  for (;;) {
    for (int i = 0; i < r; ++i) out->push_back(ids[idx[i]]);
    int pos = r - 1;
    while (pos >= 0) {
      ++idx[pos];
      int64_t limit = pos == 0 ? first_end : d;
      if (idx[pos] < limit) break;
      if (pos == 0) return;
      idx[pos] = 0;
      --pos;
    }
  }
}

Result<TablePtr> EvalSlotDomain(KernelState* ks, Slot* s) {
  const std::vector<ValueId>& ids = ks->domain_ids;
  int64_t d = static_cast<int64_t>(ids.size());
  const int arity = s->arity;
  if (arity == 0) {
    TupleTable unit(0);
    unit.AppendRow(nullptr);
    return OwnTable(std::move(unit));
  }
  if (d == 0) return OwnTable(TupleTable(arity));
  double size = std::pow(static_cast<double>(d), static_cast<double>(arity));
  bool eligible = size >= static_cast<double>(ks->options->parallel_threshold);
  if (eligible) {
    ++s->d_sharded;
    s->d_tasks += MorselCount(d);
  }
  TupleTable out(arity);
  if (!eligible || ks->pool == nullptr || d <= 1) {
    EnumerateDomainIdRange(ids, arity, 0, d, &out.MutableData());
    out.FinishAppends();
    return OwnTable(std::move(out));
  }
  int64_t chunk = (d + kMaxShards - 1) / kMaxShards;
  std::vector<std::vector<ValueId>> chunks =
      runtime::ShardedTransform<std::vector<ValueId>>(
          ks->pool, d, chunk, ks->max_helpers,
          [ks, &ids, arity](int64_t begin, int64_t end) {
            std::vector<ValueId> local;
            if (ks->options->cancel.Fired()) return local;  // see RunSlot
            EnumerateDomainIdRange(ids, arity, begin, end, &local);
            return local;
          });
  std::vector<ValueId>& data = out.MutableData();
  for (const std::vector<ValueId>& c : chunks) {
    data.insert(data.end(), c.begin(), c.end());
  }
  out.FinishAppends();
  return OwnTable(std::move(out));
}

Result<TablePtr> EvalSlotSelectJoin(KernelState* ks, Slot* s,
                                    const TablePtr& a, const TablePtr& b) {
  const int la = a->arity(), ra = b->arity();
  const ValueDict& dict = *ks->dict;
  TablePtr fa = a, fb = b;
  if (!s->left_filter_true) {
    const CompiledCond& cc = s->left_cc;
    fa = OwnTable(SlotTransform(
        ks, s, *a, a->size(), la,
        [&cc, &dict, la](const ValueId* row, std::vector<ValueId>* out) {
          if (cc.Eval(row, la, dict)) out->insert(out->end(), row, row + la);
        }));
  }
  if (!s->right_filter_true) {
    const CompiledCond& cc = s->right_cc;
    fb = OwnTable(SlotTransform(
        ks, s, *b, b->size(), ra,
        [&cc, &dict, ra](const ValueId* row, std::vector<ValueId>* out) {
          if (cc.Eval(row, ra, dict)) out->insert(out->end(), row, row + ra);
        }));
  }
  const CompiledCond& residual = s->residual_cc;
  const int out_arity = s->arity;
  if (!s->keys.empty()) {
    ++s->d_hash_join;
    // Probe work drives sharding eligibility (the build is linear anyway).
    bool eligible = std::max(fa->size(), fb->size()) >=
                    ks->options->parallel_threshold;
    if (eligible) ++s->d_sharded;
    if (s->build_perm != nullptr) {
      // Cached build side: the probe is the other input. IndexJoin emits
      // nothing when either side is empty, so morsels only count then.
      const TupleTable& probe = s->build_perm_left ? *fb : *fa;
      if (eligible && !fa->empty() && !fb->empty()) {
        s->d_tasks += MorselCount(probe.size());
      }
      return OwnTable(eval_internal::IndexJoin(
          *fa, *fb, s->keys, residual, dict, *s->build_perm,
          s->build_perm_left, eligible ? ks->pool : nullptr,
          ks->max_helpers));
    }
    if (eligible && !fa->empty() && !fb->empty()) {
      s->d_tasks += MorselCount(std::max(fa->size(), fb->size()));
    }
    return OwnTable(eval_internal::HashJoin(*fa, *fb, s->keys, residual, dict,
                                            eligible ? ks->pool : nullptr,
                                            ks->max_helpers));
  }
  // No usable equality keys: nested loop over the *filtered* sides, with
  // the residual applied during emission (still strictly less work than
  // materializing the product and selecting afterwards).
  ++s->d_nested;
  if (out_arity == 0) {
    TupleTable out(0);
    if (!fa->empty() && !fb->empty() &&
        (residual.IsTrue() || residual.Eval(nullptr, 0, dict))) {
      out.AppendRow(nullptr);
    }
    return OwnTable(std::move(out));
  }
  const TupleTable& right = *fb;
  TupleTable out = SlotTransform(
      ks, s, *fa, fa->size() * fb->size(), out_arity,
      [&residual, &dict, &right, la, ra, out_arity](
          const ValueId* lrow, std::vector<ValueId>* out_data) {
        std::vector<ValueId> combined(static_cast<size_t>(out_arity));
        std::copy(lrow, lrow + la, combined.begin());
        for (int64_t j = 0; j < right.size(); ++j) {
          const ValueId* rrow = right.Row(j);
          std::copy(rrow, rrow + ra, combined.begin() + la);
          if (residual.IsTrue() ||
              residual.Eval(combined.data(), out_arity, dict)) {
            out_data->insert(out_data->end(), combined.begin(),
                             combined.end());
          }
        }
      });
  // (sorted a) × (sorted b) emitted a-major is already sorted, and pairs of
  // unique rows are unique.
  return OwnTable(std::move(out));
}

Result<TablePtr> EvalSlotSelectDomain(KernelState* ks, Slot* s) {
  const int r = s->arity;
  const std::vector<ValueId>& ids = ks->domain_ids;
  int64_t d = static_cast<int64_t>(ids.size());
  const int free_count = s->free_count;
  if (free_count > 0 && d == 0) return OwnTable(TupleTable(r));
  const CompiledCond& cc = s->cond;
  const ValueDict& dict = *ks->dict;
  const std::vector<int>& class_of = s->class_of;
  const std::vector<ValueId>& class_id = s->class_id;
  const std::vector<char>& class_bound = s->class_bound;
  const std::vector<int>& free_slot = s->free_slot;

  // Enumerates assignments whose *first free class* takes ids[begin..end),
  // odometer over the remaining free classes.
  auto enumerate = [&](int64_t begin, int64_t end) {
    std::vector<ValueId> local;
    std::vector<int64_t> odo(static_cast<size_t>(std::max(free_count, 1)), 0);
    std::vector<ValueId> row(static_cast<size_t>(r));
    if (free_count == 0) {
      for (int k = 0; k < r; ++k) {
        row[static_cast<size_t>(k)] =
            class_id[static_cast<size_t>(class_of[static_cast<size_t>(k)])];
      }
      if (cc.Eval(row.data(), r, dict)) {
        local.insert(local.end(), row.begin(), row.end());
      }
      return local;
    }
    if (begin >= end) return local;
    odo[0] = begin;
    for (;;) {
      for (int k = 0; k < r; ++k) {
        int c = class_of[static_cast<size_t>(k)];
        row[static_cast<size_t>(k)] =
            class_bound[static_cast<size_t>(c)]
                ? class_id[static_cast<size_t>(c)]
                : ids[static_cast<size_t>(
                      odo[static_cast<size_t>(
                          free_slot[static_cast<size_t>(c)])])];
      }
      if (cc.Eval(row.data(), r, dict)) {
        local.insert(local.end(), row.begin(), row.end());
      }
      int pos = free_count - 1;
      while (pos >= 0) {
        ++odo[static_cast<size_t>(pos)];
        int64_t limit = pos == 0 ? end : d;
        if (odo[static_cast<size_t>(pos)] < limit) break;
        if (pos == 0) return local;
        odo[static_cast<size_t>(pos)] = 0;
        --pos;
      }
    }
  };

  double size = std::pow(static_cast<double>(d),
                         static_cast<double>(free_count));
  bool eligible = size >= static_cast<double>(ks->options->parallel_threshold);
  if (eligible) {
    ++s->d_sharded;
    if (free_count > 0) s->d_tasks += MorselCount(d);
  }
  TupleTable out(r);
  if (free_count == 0 || !eligible || ks->pool == nullptr || d <= 1) {
    std::vector<ValueId> rows = enumerate(0, std::max<int64_t>(d, 1));
    out.MutableData() = std::move(rows);
  } else {
    int64_t chunk = (d + kMaxShards - 1) / kMaxShards;
    std::vector<std::vector<ValueId>> chunks =
        runtime::ShardedTransform<std::vector<ValueId>>(
            ks->pool, d, chunk, ks->max_helpers,
            [ks, &enumerate](int64_t begin, int64_t end) {
              if (ks->options->cancel.Fired()) {  // see RunSlot
                return std::vector<ValueId>{};
              }
              return enumerate(begin, end);
            });
    std::vector<ValueId>& data = out.MutableData();
    for (const std::vector<ValueId>& c : chunks) {
      data.insert(data.end(), c.begin(), c.end());
    }
  }
  out.FinishAppends();
  // Class-major enumeration is not coordinate-lexicographic; assignments
  // are distinct, so sorting alone canonicalizes.
  out.SortRows();
  return OwnTable(std::move(out));
}

/// Computes one slot's table from its input tables. Pure modulo the slot's
/// own measured counters: every branch taken here was decided at plan time
/// or depends only on the input tables, so the output is identical at any
/// lane count.
Result<TablePtr> EvalSlot(KernelState* ks, Slot* s,
                          const std::vector<TablePtr>& in) {
  const Expr* e = s->node;
  switch (s->op) {
    case SlotOp::kRelation: {
      // Encoded once per evaluation (one slot per interned node). The
      // instance's values are all in the dictionary's seeded range, so the
      // encode is a linear pass and arrives sorted. A ragged relation (the
      // instance API never validates arity) is a clean error here, not an
      // out-of-bounds row read.
      MAPCOMP_ASSIGN_OR_RETURN(
          TupleTable t, TupleTable::FromSet(ks->instance->Get(e->name()),
                                            s->arity, ks->dict.get()));
      return OwnTable(std::move(t));
    }
    case SlotOp::kDomain:
      return EvalSlotDomain(ks, s);
    case SlotOp::kEmpty:
    case SlotOp::kSelectDomainEmpty:
      return OwnTable(TupleTable(s->arity));
    case SlotOp::kLiteral: {
      TupleTable out(s->arity);
      if (s->arity == 0) {
        if (!e->tuples().empty()) out.AppendRow(nullptr);
        return OwnTable(std::move(out));
      }
      std::vector<ValueId>& data = out.MutableData();
      for (const Tuple& t : e->tuples()) {
        for (const Value& v : t) data.push_back(ks->dict->Intern(v));
      }
      out.FinishAppends();
      out.SortDedupRows();
      return OwnTable(std::move(out));
    }
    case SlotOp::kUnion: {
      TablePtr a = in[0], b = in[1];
      // Shared immutably: a subsumed side means the union IS the other
      // side — no copy (Union(x, x) and the feed loop's re-unions).
      if (a->empty()) return b;
      if (b->empty() || a == b) return a;
      TupleTable merged = TupleTable::UnionOf(*a, *b);
      if (merged.size() == a->size()) return a;  // b ⊆ a
      if (merged.size() == b->size()) return b;  // a ⊆ b
      return OwnTable(std::move(merged));
    }
    case SlotOp::kIntersect: {
      TablePtr a = in[0], b = in[1];
      if (a == b) return a;
      TupleTable merged = TupleTable::IntersectOf(*a, *b);
      if (merged.size() == a->size()) return a;  // a ⊆ b
      return OwnTable(std::move(merged));
    }
    case SlotOp::kDifference: {
      TablePtr a = in[0], b = in[1];
      if (a == b) return OwnTable(TupleTable(s->arity));
      TupleTable merged = TupleTable::DifferenceOf(*a, *b);
      if (merged.size() == a->size()) return a;  // disjoint
      return OwnTable(std::move(merged));
    }
    case SlotOp::kProduct: {
      TablePtr a = in[0], b = in[1];
      ++s->d_nested;
      const int la = a->arity(), ra = b->arity();
      const int out_arity = s->arity;
      if (out_arity == 0) {
        TupleTable out(0);
        if (!a->empty() && !b->empty()) out.AppendRow(nullptr);
        return OwnTable(std::move(out));
      }
      const TupleTable& right = *b;
      return OwnTable(SlotTransform(
          ks, s, *a, a->size() * b->size(), out_arity,
          [&right, la, ra](const ValueId* lrow, std::vector<ValueId>* out) {
            for (int64_t j = 0; j < right.size(); ++j) {
              out->insert(out->end(), lrow, lrow + la);
              const ValueId* rrow = right.Row(j);
              out->insert(out->end(), rrow, rrow + ra);
            }
          }));
      // Sorted by construction: a-major over two sorted inputs.
    }
    case SlotOp::kSelectFilter: {
      TablePtr a = in[0];
      const CompiledCond& cc = s->cond;
      const ValueDict& dict = *ks->dict;
      const int arity = a->arity();
      if (arity == 0) {
        TupleTable out(0);
        if (!a->empty() && cc.Eval(nullptr, 0, dict)) out.AppendRow(nullptr);
        return OwnTable(std::move(out));
      }
      return OwnTable(SlotTransform(
          ks, s, *a, a->size(), arity,
          [&cc, &dict, arity](const ValueId* row, std::vector<ValueId>* out) {
            if (cc.Eval(row, arity, dict)) {
              out->insert(out->end(), row, row + arity);
            }
          }));
      // Filtering preserves sortedness.
    }
    case SlotOp::kSelectJoin:
      return EvalSlotSelectJoin(ks, s, in[0], in[1]);
    case SlotOp::kSelectDomain:
      return EvalSlotSelectDomain(ks, s);
    case SlotOp::kProject: {
      TablePtr a = in[0];
      const std::vector<int>& indexes = e->indexes();
      if (indexes.empty()) {
        TupleTable out(0);
        if (!a->empty()) out.AppendRow(nullptr);
        return OwnTable(std::move(out));
      }
      const int out_arity = static_cast<int>(indexes.size());
      TupleTable out = SlotTransform(
          ks, s, *a, a->size(), out_arity,
          [&indexes](const ValueId* row, std::vector<ValueId>* out_data) {
            for (int i : indexes) out_data->push_back(row[i - 1]);
          });
      out.SortDedupRows();  // projection reorders and may collapse rows
      return OwnTable(std::move(out));
    }
    case SlotOp::kSkolem: {
      TablePtr a = in[0];
      // Minted term ids may differ run to run under concurrency (Intern is
      // thread-safe but arrival order is schedule-dependent) — harmless: id
      // equality still means value equality, and the result surfaces
      // (ToSet, Fingerprint) re-canonicalize by value.
      const std::vector<int>& indexes = e->indexes();
      const int in_arity = a->arity();
      TupleTable out(in_arity + 1);
      std::vector<ValueId>& data = out.MutableData();
      data.reserve(static_cast<size_t>(a->size()) *
                   static_cast<size_t>(in_arity + 1));
      for (int64_t i = 0; i < a->size(); ++i) {
        const ValueId* row = a->Row(i);
        std::string term = e->name() + "(";
        for (size_t k = 0; k < indexes.size(); ++k) {
          if (k > 0) term += ",";
          term += ValueToString(ks->dict->ValueOf(row[indexes[k] - 1]));
        }
        term += ")";
        data.insert(data.end(), row, row + in_arity);
        data.push_back(ks->dict->Intern(Value(std::move(term))));
      }
      out.FinishAppends();
      out.SortRows();  // appended ids land out of id order; rows stay unique
      return OwnTable(std::move(out));
    }
    case SlotOp::kUserOp: {
      if (s->user_columnar) {
        // Columnar kernel: borrowed child tables in, one table out, no
        // value decode anywhere. The kernel may return rows unsorted /
        // duplicated (hash-order closures, multi-match outer joins) —
        // canonicalize here so downstream consumers keep the sorted-unique
        // invariant every other slot guarantees.
        std::vector<const TupleTable*> kids;
        kids.reserve(s->args.size());
        for (size_t i = 0; i < s->args.size(); ++i) {
          kids.push_back(in[i].get());
        }
        op::ColumnarContext ctx;
        ctx.dict = ks->dict.get();
        ctx.cond = &s->cond;
        ctx.domain_ids = &ks->domain_ids;
        MAPCOMP_ASSIGN_OR_RETURN(TupleTable out,
                                 s->def->eval_columnar(*e, kids, ctx));
        if (out.arity() != s->arity) {
          // Mirror the FromSet guard on the set path: a kernel emitting the
          // wrong width is a clean argument error, not a crash downstream.
          return Status::InvalidArgument(
              "columnar operator " + e->name() + " returned arity " +
              std::to_string(out.arity()) + ", expected " +
              std::to_string(s->arity));
        }
        out.SortDedupRows();
        return OwnTable(std::move(out));
      }
      // Legacy set-based evaluators speak std::set<Tuple>: decode children
      // at this boundary (cached per input slot under a mutex — a child
      // feeding several user ops decodes once) and re-encode the result.
      std::vector<TupleSetPtr> owners;
      std::vector<const std::set<Tuple>*> kids;
      owners.reserve(s->args.size());
      kids.reserve(s->args.size());
      for (size_t i = 0; i < s->args.size(); ++i) {
        TupleSetPtr cached;
        {
          std::lock_guard<std::mutex> lock(ks->decode_mu);
          TupleSetPtr& entry = ks->decoded[s->args[i]];
          if (entry == nullptr) entry = Own(in[i]->ToSet(*ks->dict));
          cached = entry;
        }
        kids.push_back(cached.get());
        owners.push_back(std::move(cached));
      }
      op::EvalContext ctx;
      ctx.active_domain = &FallbackDomain(ks);
      MAPCOMP_ASSIGN_OR_RETURN(std::set<Tuple> out,
                               s->def->eval(*e, kids, ctx));
      MAPCOMP_ASSIGN_OR_RETURN(
          TupleTable t, TupleTable::FromSet(out, s->arity, ks->dict.get()));
      return OwnTable(std::move(t));
    }
  }
  return Status::Internal("unknown slot op");
}

/// The task body for one slot: gather inputs, compute (or propagate the
/// first failed input's status — every slot runs, so the error surfaced by
/// the whole evaluation is the lowest-slot one regardless of scheduling),
/// then retire this slot's claim on each distinct input, dropping tables
/// whose last consumer this was.
void RunSlot(KernelState* ks, int64_t idx) {
  Slot& s = ks->slots[static_cast<size_t>(idx)];
  common::fault::MaybeSleep(common::fault::FaultPoint::kSlowEvalSlot);
  std::vector<TablePtr> in;
  in.reserve(s.args.size());
  Status child_err = Status::OK();
  for (int64_t a : s.args) {
    Slot& c = ks->slots[static_cast<size_t>(a)];
    if (!c.status.ok() && child_err.ok()) child_err = c.status;
    in.push_back(c.result);
  }
  // Slot-boundary cancellation points. The entry poll skips the compute;
  // the exit poll discards a table whose sharded chunks may have early-outed
  // mid-slot (the token is monotonic, so a truncated table implies the exit
  // poll sees it fired — a truncated result can never be mistaken for a
  // completed one).
  if (child_err.ok()) child_err = ks->options->cancel.StatusAt("eval slot");
  if (child_err.ok()) {
    Result<TablePtr> r = EvalSlot(ks, &s, in);
    Status exit_poll = ks->options->cancel.StatusAt("eval slot");
    if (!exit_poll.ok()) {
      s.status = exit_poll;
    } else if (r.ok()) {
      s.result = std::move(r).value();
      s.bytes = s.result->ApproxBytes();
      s.d_tuples = s.result->size();
    } else {
      s.status = r.status();
    }
  } else {
    s.status = child_err;
  }
  in.clear();  // drop borrowed refs before releasing consumer claims
  std::vector<int64_t> distinct = s.args;
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()),
                 distinct.end());
  for (int64_t a : distinct) {
    Slot& c = ks->slots[static_cast<size_t>(a)];
    // acq_rel: our read of c.result happened-before this decrement, and the
    // zero-observing consumer's reset happens-after every other decrement.
    if (c.live_consumers.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      c.result.reset();
    }
  }
}

/// A completed kernel evaluation: the state (holding root tables + dict)
/// plus replayed per-root and total stats.
struct KernelRun {
  KernelState ks;
  std::vector<EvalStats> root_stats;
  EvalStats total;
};

/// Folds the slots' measured outputs into per-root stats buckets by
/// replaying the plan's event log in order. Plan order equals the old
/// recursive engine's execution order, so every counter — including the
/// live-bytes watermark — lands in the same bucket with the same value,
/// at any lane count.
void ReplayStats(KernelRun* run) {
  KernelState& ks = run->ks;
  run->root_stats.assign(ks.root_slots.size(), EvalStats{});
  size_t bucket = 0;
  int64_t live = 0;
  int64_t peak = 0;
  for (const PlanEvent& ev : ks.events) {
    if (bucket >= run->root_stats.size()) break;
    EvalStats& st = run->root_stats[bucket];
    switch (ev.kind) {
      case PlanEvent::kEval: {
        const Slot& s = ks.slots[static_cast<size_t>(ev.slot)];
        ++st.nodes_evaluated;
        st.tuples_produced += s.d_tuples;
        st.sharded_nodes += s.d_sharded;
        st.hash_join_nodes += s.d_hash_join;
        st.nested_product_nodes += s.d_nested;
        st.tasks_spawned += 1 + s.d_tasks;
        if (s.op == SlotOp::kUserOp) {
          if (s.user_columnar) {
            ++st.user_op_columnar;
          } else {
            ++st.user_op_decode_fallback;
          }
        }
        st.memo_bytes_total += s.bytes;
        live += s.bytes;
        peak = std::max(peak, live);
        break;
      }
      case PlanEvent::kHit:
        ++st.memo_hits;
        break;
      case PlanEvent::kDrop:
        live -= ks.slots[static_cast<size_t>(ev.slot)].bytes;
        break;
      case PlanEvent::kIndexHit:
        ++st.index_cache_hits;
        break;
      case PlanEvent::kIndexMiss:
        ++st.index_cache_misses;
        break;
      case PlanEvent::kRootEnd:
        st.memo_bytes_peak = peak;
        st.max_ready_depth = ks.root_width[bucket];
        ++bucket;
        break;
    }
  }
  for (const EvalStats& st : run->root_stats) run->total.MergeFrom(st);
}

/// Plans and runs the kernel task graph for a root forest. On success the
/// returned run holds every root's result table (pinned — non-root slot
/// tables were dropped as their consumers retired) and replayed stats.
Result<std::unique_ptr<KernelRun>> KernelExecute(
    const std::vector<ExprPtr>& roots, const Instance& instance,
    const EvalOptions& options) {
  for (const ExprPtr& root : roots) {
    if (root == nullptr) return Status::InvalidArgument("null expression");
  }
  MAPCOMP_RETURN_IF_ERROR(options.cancel.StatusAt("eval plan"));
  auto run = std::make_unique<KernelRun>();
  KernelState& ks = run->ks;
  ks.instance = &instance;
  ks.options = &options;
  // Seed the dictionary with everything the evaluation can see up front
  // (domain + every expression constant), sorted — so the id order over
  // this range is the value order and encodes/enumerations arrive sorted.
  // This is the evaluation's single value-set copy: the domain is kept as
  // ids from here on (legacy user-op fallbacks decode it lazily).
  std::set<Value> universe = instance.ActiveDomain();
  universe.insert(options.extra_constants.begin(),
                  options.extra_constants.end());
  size_t domain_size = universe.size();
  std::set<const Expr*> visited;
  for (const ExprPtr& root : roots) {
    CollectExprConstants(root, &universe, &visited);
  }
  ks.dict = std::make_shared<ValueDict>();
  ks.dict->Seed(universe);
  ks.domain_ids.reserve(domain_size);
  for (const Value& v : instance.ActiveDomain()) {
    ks.domain_ids.push_back(*ks.dict->Find(v));
  }
  for (const Value& v : options.extra_constants) {
    ks.domain_ids.push_back(*ks.dict->Find(v));
  }
  std::sort(ks.domain_ids.begin(), ks.domain_ids.end());
  ks.domain_ids.erase(
      std::unique(ks.domain_ids.begin(), ks.domain_ids.end()),
      ks.domain_ids.end());
  if (options.jobs > 1) {
    ks.pool = runtime::GlobalPool();
    ks.max_helpers = options.jobs - 1;
  }
  std::set<const Expr*> counted;
  for (const ExprPtr& root : roots) {
    ++ks.uses[root.get()].remaining;
    CountUses(root, &ks.uses, &counted);
  }
  // Phase 1: sequential plan.
  for (const ExprPtr& root : roots) {
    MAPCOMP_ASSIGN_OR_RETURN(int64_t slot, PlanVisit(root, &ks));
    ks.root_slots.push_back(slot);
    SimConsume(root.get(), &ks);
    ks.events.push_back({PlanEvent::kRootEnd, slot});
    ks.root_width.push_back(ks.max_width);
  }
  // Consumer refcounts: one claim per distinct dependent slot, plus a
  // never-released pin per root occurrence (the caller takes those tables).
  for (const Slot& s : ks.slots) {
    std::vector<int64_t> distinct = s.args;
    std::sort(distinct.begin(), distinct.end());
    distinct.erase(std::unique(distinct.begin(), distinct.end()),
                   distinct.end());
    for (int64_t a : distinct) {
      ks.slots[static_cast<size_t>(a)].live_consumers.fetch_add(
          1, std::memory_order_relaxed);
    }
  }
  for (int64_t root_slot : ks.root_slots) {
    ks.slots[static_cast<size_t>(root_slot)].live_consumers.fetch_add(
        1, std::memory_order_relaxed);
  }
  // Phase 2: run the task graph. Dependencies are the slot's input slots,
  // indexes are topological by construction (children planned first).
  runtime::TaskDag dag;
  KernelState* ksp = &ks;
  for (int64_t i = 0; i < static_cast<int64_t>(ks.slots.size()); ++i) {
    dag.AddTask([ksp, i] { RunSlot(ksp, i); },
                ks.slots[static_cast<size_t>(i)].args);
  }
  dag.Run(ks.pool, ks.max_helpers, &options.cancel);
  // Error precedence: every slot ran (failed inputs propagate), so the
  // first non-OK slot in plan order is the same error the recursive engine
  // would have hit first — independent of scheduling. (A fired token
  // weakens this: slots the dag retired unexecuted carry OK statuses, so
  // the scan may find nothing — the root check below catches that case.)
  for (const Slot& s : ks.slots) {
    if (!s.status.ok()) return s.status;
  }
  // Completion wins the race: a token that fired only after every root
  // table materialized changes nothing. Otherwise some root never ran and
  // the evaluation surfaces the token's status.
  if (options.cancel.Fired()) {
    for (int64_t root_slot : ks.root_slots) {
      if (ks.slots[static_cast<size_t>(root_slot)].result == nullptr) {
        return options.cancel.StatusAt("eval");
      }
    }
  }
  // Phase 3: replay stats.
  ReplayStats(run.get());
  return run;
}

}  // namespace

void EvalStats::MergeFrom(const EvalStats& other) {
  nodes_evaluated += other.nodes_evaluated;
  memo_hits += other.memo_hits;
  sharded_nodes += other.sharded_nodes;
  tuples_produced += other.tuples_produced;
  hash_join_nodes += other.hash_join_nodes;
  nested_product_nodes += other.nested_product_nodes;
  memo_bytes_total += other.memo_bytes_total;
  memo_bytes_peak = std::max(memo_bytes_peak, other.memo_bytes_peak);
  tasks_spawned += other.tasks_spawned;
  max_ready_depth = std::max(max_ready_depth, other.max_ready_depth);
  index_cache_hits += other.index_cache_hits;
  index_cache_misses += other.index_cache_misses;
  user_op_columnar += other.user_op_columnar;
  user_op_decode_fallback += other.user_op_decode_fallback;
}

EvalStats EvalStats::DiffFrom(const EvalStats& before) const {
  EvalStats out;
  out.nodes_evaluated = nodes_evaluated - before.nodes_evaluated;
  out.memo_hits = memo_hits - before.memo_hits;
  out.sharded_nodes = sharded_nodes - before.sharded_nodes;
  out.tuples_produced = tuples_produced - before.tuples_produced;
  out.hash_join_nodes = hash_join_nodes - before.hash_join_nodes;
  out.nested_product_nodes =
      nested_product_nodes - before.nested_product_nodes;
  out.memo_bytes_total = memo_bytes_total - before.memo_bytes_total;
  out.memo_bytes_peak = memo_bytes_peak;  // watermark, not a counter
  out.tasks_spawned = tasks_spawned - before.tasks_spawned;
  out.max_ready_depth = max_ready_depth;  // watermark, not a counter
  out.index_cache_hits = index_cache_hits - before.index_cache_hits;
  out.index_cache_misses = index_cache_misses - before.index_cache_misses;
  out.user_op_columnar = user_op_columnar - before.user_op_columnar;
  out.user_op_decode_fallback =
      user_op_decode_fallback - before.user_op_decode_fallback;
  return out;
}

std::string EvalStats::ToString() const {
  return "eval: " + std::to_string(nodes_evaluated) + " nodes, " +
         std::to_string(memo_hits) + " memo hits, " +
         std::to_string(sharded_nodes) + " sharded, " +
         std::to_string(tuples_produced) + " tuples, " +
         std::to_string(hash_join_nodes) + " hash joins, " +
         std::to_string(nested_product_nodes) + " nested products, memo " +
         std::to_string(memo_bytes_peak) + "B peak / " +
         std::to_string(memo_bytes_total) + "B total, " +
         std::to_string(tasks_spawned) + " tasks, ready width " +
         std::to_string(max_ready_depth) + ", join index " +
         std::to_string(index_cache_hits) + " hits / " +
         std::to_string(index_cache_misses) + " misses, user ops " +
         std::to_string(user_op_columnar) + " columnar / " +
         std::to_string(user_op_decode_fallback) + " decode-fallback";
}

/// Shared decode-on-demand payload: copies of one EvalResult (and the
/// evaluator's own handle) all see the same cached decode.
struct EvalResult::Lazy {
  std::mutex mu;
  bool decoded = false;
  std::set<Tuple> set;
  std::shared_ptr<const TupleTable> table;
  std::shared_ptr<const ValueDict> dict;
};

EvalResult::EvalResult() : lazy_(std::make_shared<Lazy>()) {}

const std::set<Tuple>& EvalResult::tuples() const {
  static const std::set<Tuple>* kEmpty = new std::set<Tuple>();
  if (lazy_ == nullptr) return *kEmpty;
  std::lock_guard<std::mutex> lock(lazy_->mu);
  if (!lazy_->decoded) {
    if (lazy_->table != nullptr) {
      lazy_->set = lazy_->table->ToSet(*lazy_->dict);
    }
    lazy_->decoded = true;
    lazy_->table.reset();
    lazy_->dict.reset();
  }
  return lazy_->set;
}

std::set<Tuple> EvalResult::TakeTuples() {
  if (lazy_ == nullptr) return {};
  tuples();  // force the decode (idempotent)
  std::lock_guard<std::mutex> lock(lazy_->mu);
  std::set<Tuple> out = std::move(lazy_->set);
  lazy_->set.clear();
  return out;
}

void EvalResult::SetDecoded(std::set<Tuple> tuples) {
  if (lazy_ == nullptr) lazy_ = std::make_shared<Lazy>();
  std::lock_guard<std::mutex> lock(lazy_->mu);
  lazy_->set = std::move(tuples);
  lazy_->decoded = true;
  lazy_->table.reset();
  lazy_->dict.reset();
}

void EvalResult::SetTable(std::shared_ptr<const TupleTable> table,
                          std::shared_ptr<const ValueDict> dict) {
  if (lazy_ == nullptr) lazy_ = std::make_shared<Lazy>();
  std::lock_guard<std::mutex> lock(lazy_->mu);
  lazy_->table = std::move(table);
  lazy_->dict = std::move(dict);
  lazy_->decoded = false;
  lazy_->set.clear();
}

namespace {

void AppendValueFp(const Value& v, std::string* out) {
  if (const int64_t* i = std::get_if<int64_t>(&v)) {
    *out += "i" + std::to_string(*i) + ";";
  } else {
    const std::string& s = std::get<std::string>(v);
    *out += "s" + std::to_string(s.size()) + ":" + s + ";";
  }
}

}  // namespace

std::string EvalResult::Fingerprint() const {
  // Canonical, not pretty: string values are length-prefixed (a quote or
  // comma inside a value must never make two different tuple sets
  // serialize identically — this string is the determinism oracle).
  if (lazy_ != nullptr) {
    std::lock_guard<std::mutex> lock(lazy_->mu);
    if (!lazy_->decoded && lazy_->table != nullptr) {
      const TupleTable& t = *lazy_->table;
      const ValueDict& dict = *lazy_->dict;
      // Zero-decode fast path: when every id is in the dictionary's seeded
      // order-preserving range, the sorted table's row order IS the decoded
      // set's order — stream it directly, no std::set, no Tuple heap
      // allocation. (Minted ids — Skolem terms, user-op outputs — break
      // the order guarantee; fall through to the cached decode for those.)
      bool all_seeded = true;
      for (ValueId id : t.Data()) {
        if (id >= dict.ordered_limit()) {
          all_seeded = false;
          break;
        }
      }
      if (all_seeded) {
        std::string out = "eval{arity=" + std::to_string(arity) +
                          ";n=" + std::to_string(t.size()) + ";";
        const int a = t.arity();
        for (int64_t i = 0; i < t.size(); ++i) {
          out += "t" + std::to_string(a) + ":";
          const ValueId* row = t.Row(i);
          for (int k = 0; k < a; ++k) {
            AppendValueFp(dict.ValueOf(row[k]), &out);
          }
        }
        out += "}";
        return out;
      }
      lazy_->set = t.ToSet(dict);
      lazy_->decoded = true;
      lazy_->table.reset();
      lazy_->dict.reset();
    }
  }
  const std::set<Tuple>& ts = tuples();
  std::string out = "eval{arity=" + std::to_string(arity) +
                    ";n=" + std::to_string(ts.size()) + ";";
  for (const Tuple& t : ts) {
    out += "t" + std::to_string(t.size()) + ":";
    for (const Value& v : t) AppendValueFp(v, &out);
  }
  out += "}";
  return out;
}

Result<std::vector<EvalResult>> EvaluateMany(const std::vector<ExprPtr>& roots,
                                             const Instance& instance,
                                             const EvalOptions& options) {
  std::vector<EvalResult> results(roots.size());
  if (!options.force_nested_loop) {
    MAPCOMP_ASSIGN_OR_RETURN(std::unique_ptr<KernelRun> run,
                             KernelExecute(roots, instance, options));
    for (size_t i = 0; i < roots.size(); ++i) {
      results[i].arity = roots[i]->arity();
      results[i].stats = run->root_stats[i];
      // Columnar handoff: the table is decoded only if someone asks for
      // tuples() — fingerprints and containment checks never pay for it.
      results[i].SetTable(
          run->ks.slots[static_cast<size_t>(run->ks.root_slots[i])].result,
          run->ks.dict);
    }
    return results;
  }
  EvalState st;
  MAPCOMP_RETURN_IF_ERROR(LegacyInit(&st, roots, instance, options));
  std::vector<TupleSetPtr> ptrs;
  ptrs.reserve(roots.size());
  for (size_t i = 0; i < roots.size(); ++i) {
    EvalStats before = st.stats;
    MAPCOMP_ASSIGN_OR_RETURN(TupleSetPtr tuples, LegacyRec(roots[i], &st));
    results[i].arity = roots[i]->arity();
    results[i].stats = st.stats.DiffFrom(before);
    ptrs.push_back(std::move(tuples));
    Consume(roots[i].get(), &st);
  }
  // Refcount dropping usually leaves each root set uniquely owned here, so
  // it is moved, not copied (a base-relation root is a non-owning alias
  // into the instance, and duplicate roots share one set — both copy).
  st.memo_sets.clear();
  for (size_t i = 0; i < roots.size(); ++i) {
    if (ptrs[i].use_count() == 1) {
      results[i].SetDecoded(std::move(*ptrs[i]));
    } else {
      results[i].SetDecoded(*ptrs[i]);
    }
  }
  return results;
}

Result<bool> EvaluateContainment(const ExprPtr& lhs, const ExprPtr& rhs,
                                 bool equality, const Instance& instance,
                                 const EvalOptions& options,
                                 EvalStats* stats) {
  if (options.force_nested_loop) {
    MAPCOMP_ASSIGN_OR_RETURN(std::vector<EvalResult> sides,
                             EvaluateMany({lhs, rhs}, instance, options));
    if (stats != nullptr) {
      stats->MergeFrom(sides[0].stats);
      stats->MergeFrom(sides[1].stats);
    }
    bool contained = true;
    for (const Tuple& t : sides[0].tuples()) {
      if (sides[1].tuples().count(t) == 0) {
        contained = false;
        break;
      }
    }
    if (equality) {
      contained =
          contained && sides[0].tuples().size() == sides[1].tuples().size();
    }
    return contained;
  }
  // Both sides run under one plan: shared subtrees evaluate once, and the
  // two roots' independent subtrees interleave on the task graph. The
  // subset check is a linear merge walk over the columnar tables — nothing
  // is decoded back to std::set.
  MAPCOMP_ASSIGN_OR_RETURN(std::unique_ptr<KernelRun> run,
                           KernelExecute({lhs, rhs}, instance, options));
  if (stats != nullptr) stats->MergeFrom(run->total);
  const TablePtr& a =
      run->ks.slots[static_cast<size_t>(run->ks.root_slots[0])].result;
  const TablePtr& b =
      run->ks.slots[static_cast<size_t>(run->ks.root_slots[1])].result;
  bool contained = TupleTable::SubsetOf(*a, *b);
  if (equality) contained = contained && a->size() == b->size();
  return contained;
}

Result<EvalResult> EvaluateFull(const ExprPtr& e, const Instance& instance,
                                const EvalOptions& options) {
  MAPCOMP_ASSIGN_OR_RETURN(std::vector<EvalResult> results,
                           EvaluateMany({e}, instance, options));
  return std::move(results[0]);
}

Result<std::set<Tuple>> Evaluate(const ExprPtr& e, const Instance& instance,
                                 const EvalOptions& options) {
  MAPCOMP_ASSIGN_OR_RETURN(EvalResult result,
                           EvaluateFull(e, instance, options));
  return result.TakeTuples();
}

}  // namespace mapcomp
