#include "src/eval/evaluator.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/eval/join.h"
#include "src/eval/tuple_table.h"
#include "src/eval/value_dict.h"
#include "src/runtime/sharding.h"
#include "src/runtime/thread_pool.h"

namespace mapcomp {

namespace {

using eval_internal::CompiledCond;
using eval_internal::DomainSelectPlan;
using eval_internal::JoinPlan;

/// Node results are shared, not copied: the memo table and every parent
/// hold the same set/table. Treated as immutable everywhere (the pointee
/// types stay non-const only so EvaluateMany can move a root set out when
/// it is the last owner).
using TupleSetPtr = std::shared_ptr<std::set<Tuple>>;
using TablePtr = std::shared_ptr<TupleTable>;

/// Chunk boundaries are a pure function of the work size and the shared
/// runtime::kMaxShardChunks — never of the lane count — which is what
/// keeps results and stats identical at any `jobs`.
constexpr int64_t kMaxShards = runtime::kMaxShardChunks;

/// Per-node DAG bookkeeping for memo dropping: `remaining` counts the
/// parent edges (plus root occurrences) that have not consumed this node's
/// result yet; when it reaches zero the memo entry is dropped. `evaluated`
/// distinguishes computed nodes from planned-around ones (a product the
/// join planner bypassed) whose child edges must cascade on release.
struct NodeUse {
  int64_t remaining = 0;
  bool evaluated = false;
};

struct EvalState {
  const Instance* instance;
  const EvalOptions* options;
  bool kernel = true;             ///< false ⇔ force_nested_loop
  std::set<Value> domain;         ///< active domain + extra constants
  std::vector<Value> domain_vec;  ///< legacy path: same values, set order
  ValueDict dict;                 ///< kernel path: per-evaluation interning
  std::vector<ValueId> domain_ids;  ///< kernel: domain ids, ascending
  runtime::ThreadPool* pool = nullptr;  ///< null ⇔ jobs <= 1
  int max_helpers = 0;                  ///< jobs - 1
  std::unordered_map<const Expr*, TupleSetPtr> memo_sets;    ///< legacy
  std::unordered_map<const Expr*, TablePtr> memo_tables;     ///< kernel
  /// Kernel: decoded child sets served to user-operator evaluators.
  std::unordered_map<const Expr*, TupleSetPtr> decoded;
  std::unordered_map<const Expr*, NodeUse> uses;
  EvalStats stats;
  int64_t memo_bytes_live = 0;
};

TupleSetPtr Own(std::set<Tuple> s) {
  return std::make_shared<std::set<Tuple>>(std::move(s));
}

TablePtr OwnTable(TupleTable t) {
  return std::make_shared<TupleTable>(std::move(t));
}

/// Deterministic approximate heap footprint of a legacy memo entry.
/// Base-relation entries are non-owning aliases into the instance and
/// count 0.
int64_t ApproxSetBytes(const std::set<Tuple>& s) {
  int64_t arity = s.empty() ? 0 : static_cast<int64_t>(s.begin()->size());
  return static_cast<int64_t>(s.size()) *
         (static_cast<int64_t>(sizeof(Tuple)) +
          arity * static_cast<int64_t>(sizeof(Value)) + 48);
}

int64_t EntryBytes(const Expr* e, const EvalState& st) {
  auto ti = st.memo_tables.find(e);
  if (ti != st.memo_tables.end()) return ti->second->ApproxBytes();
  auto si = st.memo_sets.find(e);
  if (si != st.memo_sets.end()) {
    return e->kind() == ExprKind::kRelation ? 0 : ApproxSetBytes(*si->second);
  }
  return 0;
}

void AccountInsert(EvalState* st, int64_t bytes) {
  st->memo_bytes_live += bytes;
  st->stats.memo_bytes_total += bytes;
  if (st->memo_bytes_live > st->stats.memo_bytes_peak) {
    st->stats.memo_bytes_peak = st->memo_bytes_live;
  }
}

/// One parent edge (or root occurrence) of `e` is done with its result.
/// The last consumer drops the memo entry; if `e` was never computed (the
/// planner bypassed it), its own child edges are released too, so
/// grandchildren consumed directly by the planner can also be dropped.
void Consume(const Expr* e, EvalState* st) {
  NodeUse& u = st->uses[e];
  if (--u.remaining > 0) return;
  st->memo_bytes_live -= EntryBytes(e, *st);
  st->memo_tables.erase(e);
  st->memo_sets.erase(e);
  st->decoded.erase(e);
  if (!u.evaluated) {
    for (const ExprPtr& c : e->children()) Consume(c.get(), st);
  }
}

void CountUses(const ExprPtr& e, EvalState* st,
               std::set<const Expr*>* visited) {
  if (!visited->insert(e.get()).second) return;
  for (const ExprPtr& c : e->children()) {
    ++st->uses[c.get()].remaining;
    CountUses(c, st, visited);
  }
}

void CollectConditionConstants(const Condition& c, std::set<Value>* out) {
  switch (c.kind()) {
    case Condition::Kind::kAtom:
      if (!c.lhs().is_attr) out->insert(c.lhs().constant);
      if (!c.rhs().is_attr) out->insert(c.rhs().constant);
      break;
    case Condition::Kind::kAnd:
    case Condition::Kind::kOr:
    case Condition::Kind::kNot:
      for (const Condition& child : c.children()) {
        CollectConditionConstants(child, out);
      }
      break;
    default:
      break;
  }
}

/// Every constant a root expression can mention — selection-condition
/// constants and literal-relation values — goes into the dictionary seed,
/// so compiled conditions always find their constants interned and the
/// seeded range stays order-preserving.
void CollectExprConstants(const ExprPtr& e, std::set<Value>* out,
                          std::set<const Expr*>* visited) {
  if (e == nullptr || !visited->insert(e.get()).second) return;
  CollectConditionConstants(e->condition(), out);
  for (const Tuple& t : e->tuples()) {
    for (const Value& v : t) out->insert(v);
  }
  for (const ExprPtr& c : e->children()) {
    CollectExprConstants(c, out, visited);
  }
}

// --------------------------------------------------------------------------
// Legacy nested-loop path (EvalOptions::force_nested_loop) — the kernel's
// differential oracle. std::set<Tuple> end to end, products as full nested
// loops with selection applied afterwards, D^r always fully enumerated.
// --------------------------------------------------------------------------

/// Applies `emit(t, out)` to every tuple of `in`. `work` is the number of
/// candidate tuples the node will enumerate (|in| for unary transforms,
/// |in|·|other| for products); when it crosses the threshold the input is
/// split into ≤ kMaxShards contiguous chunks enumerated concurrently, and
/// the per-chunk sets are merged in chunk order. The merged content is a
/// set, so it is identical whatever the chunking or lane count.
template <typename Emit>
std::set<Tuple> TransformSet(EvalState* st, const std::set<Tuple>& in,
                             int64_t work, const Emit& emit) {
  int64_t n = static_cast<int64_t>(in.size());
  bool eligible = work >= st->options->parallel_threshold;
  if (eligible) ++st->stats.sharded_nodes;
  if (!eligible || st->pool == nullptr || n <= 1) {
    std::set<Tuple> out;
    for (const Tuple& t : in) emit(t, &out);
    return out;
  }
  std::vector<const Tuple*> refs;
  refs.reserve(in.size());
  for (const Tuple& t : in) refs.push_back(&t);
  int64_t chunk = (n + kMaxShards - 1) / kMaxShards;
  std::vector<std::set<Tuple>> chunks =
      runtime::ShardedTransform<std::set<Tuple>>(
          st->pool, n, chunk, st->max_helpers,
          [&refs, &emit](int64_t begin, int64_t end) {
            std::set<Tuple> local;
            for (int64_t i = begin; i < end; ++i) emit(*refs[i], &local);
            return local;
          });
  std::set<Tuple> out;
  for (std::set<Tuple>& c : chunks) out.merge(c);
  return out;
}

/// Enumerates the r-fold product of `vals` whose first coordinate index
/// lies in [first_begin, first_end), in lexicographic order, into `out`.
void EnumerateDomainRange(const std::vector<Value>& vals, int r,
                          int64_t first_begin, int64_t first_end,
                          std::set<Tuple>* out) {
  if (first_begin >= first_end) return;
  std::vector<int64_t> idx(static_cast<size_t>(r), 0);
  idx[0] = first_begin;
  int64_t d = static_cast<int64_t>(vals.size());
  for (;;) {
    Tuple t;
    t.reserve(r);
    for (int i = 0; i < r; ++i) t.push_back(vals[idx[i]]);
    out->insert(out->end(), std::move(t));  // hint: enumeration is sorted
    int pos = r - 1;
    while (pos >= 0) {
      ++idx[pos];
      int64_t limit = pos == 0 ? first_end : d;
      if (idx[pos] < limit) break;
      if (pos == 0) return;
      idx[pos] = 0;
      --pos;
    }
  }
}

Result<TupleSetPtr> LegacyRec(const ExprPtr& e, EvalState* st);

/// Shared guard on enumerating D^r: fails fast before any tuple is
/// enumerated, so an oversized domain surfaces as an error, never a hang.
Status CheckDomainGuard(int arity, int64_t d, double work,
                        const EvalOptions& options) {
  if (work > static_cast<double>(options.max_domain_tuples)) {
    return Status::ResourceExhausted(
        "enumerating D^" + std::to_string(arity) + " over " +
        std::to_string(d) + " values is too large");
  }
  return Status::OK();
}

Result<TupleSetPtr> LegacyEvalDomain(int arity, EvalState* st) {
  const std::vector<Value>& vals = st->domain_vec;
  int64_t d = static_cast<int64_t>(vals.size());
  double size = std::pow(static_cast<double>(d), static_cast<double>(arity));
  MAPCOMP_RETURN_IF_ERROR(CheckDomainGuard(arity, d, size, *st->options));
  if (arity == 0) return Own(std::set<Tuple>{Tuple{}});
  if (d == 0) return Own(std::set<Tuple>{});
  bool eligible = size >= static_cast<double>(st->options->parallel_threshold);
  if (eligible) ++st->stats.sharded_nodes;
  if (!eligible || st->pool == nullptr || d <= 1) {
    std::set<Tuple> out;
    EnumerateDomainRange(vals, arity, 0, d, &out);
    return Own(std::move(out));
  }
  // Shard over the first coordinate: chunk c enumerates the suffix product
  // under first coordinates [c·chunk, (c+1)·chunk). Chunks are disjoint and
  // lexicographically ordered, so the chunk-ordered merge is the sorted set.
  int64_t chunk = (d + kMaxShards - 1) / kMaxShards;
  std::vector<std::set<Tuple>> chunks =
      runtime::ShardedTransform<std::set<Tuple>>(
          st->pool, d, chunk, st->max_helpers,
          [&vals, arity](int64_t begin, int64_t end) {
            std::set<Tuple> local;
            EnumerateDomainRange(vals, arity, begin, end, &local);
            return local;
          });
  std::set<Tuple> out;
  for (std::set<Tuple>& c : chunks) out.merge(c);
  return Own(std::move(out));
}

Result<TupleSetPtr> LegacyEvalNode(const ExprPtr& e, EvalState* st) {
  switch (e->kind()) {
    case ExprKind::kRelation:
      // Aliased, non-owning view of the instance's own set (the instance
      // outlives the evaluation); base relations are never copied. The
      // const_cast is never written through: the only mutation anywhere is
      // EvaluateMany's final move-out, gated on use_count() == 1, which a
      // non-owning aliased pointer (use_count 0) can never satisfy.
      return TupleSetPtr(
          TupleSetPtr{},
          const_cast<std::set<Tuple>*>(&st->instance->Get(e->name())));
    case ExprKind::kDomain:
      return LegacyEvalDomain(e->arity(), st);
    case ExprKind::kEmpty:
      return Own(std::set<Tuple>{});
    case ExprKind::kLiteral: {
      std::set<Tuple> out;
      for (const Tuple& t : e->tuples()) out.insert(t);
      return Own(std::move(out));
    }
    case ExprKind::kUnion: {
      MAPCOMP_ASSIGN_OR_RETURN(TupleSetPtr a, LegacyRec(e->child(0), st));
      MAPCOMP_ASSIGN_OR_RETURN(TupleSetPtr b, LegacyRec(e->child(1), st));
      // Results are shared immutably, so a subsumed side means the union
      // IS the other side — no copy. Union(x, x), the memo-witness shape,
      // and the feed loop's re-unions all take these exits.
      if (a->empty()) return b;
      if (b->empty() || a == b) return a;
      // Shard the filter "b minus a" (the only per-tuple work); the final
      // insert of the disjoint remainder is a cheap sequential splice.
      std::set<Tuple> extra = TransformSet(
          st, *b, static_cast<int64_t>(b->size()),
          [&a](const Tuple& t, std::set<Tuple>* out) {
            if (a->count(t) == 0) out->insert(t);
          });
      if (extra.empty()) return a;  // b ⊆ a
      std::set<Tuple> out = *a;
      out.merge(extra);
      return Own(std::move(out));
    }
    case ExprKind::kIntersect: {
      MAPCOMP_ASSIGN_OR_RETURN(TupleSetPtr a, LegacyRec(e->child(0), st));
      MAPCOMP_ASSIGN_OR_RETURN(TupleSetPtr b, LegacyRec(e->child(1), st));
      return Own(TransformSet(st, *a, static_cast<int64_t>(a->size()),
                              [&b](const Tuple& t, std::set<Tuple>* out) {
                                if (b->count(t) > 0) out->insert(t);
                              }));
    }
    case ExprKind::kDifference: {
      MAPCOMP_ASSIGN_OR_RETURN(TupleSetPtr a, LegacyRec(e->child(0), st));
      MAPCOMP_ASSIGN_OR_RETURN(TupleSetPtr b, LegacyRec(e->child(1), st));
      return Own(TransformSet(st, *a, static_cast<int64_t>(a->size()),
                              [&b](const Tuple& t, std::set<Tuple>* out) {
                                if (b->count(t) == 0) out->insert(t);
                              }));
    }
    case ExprKind::kProduct: {
      MAPCOMP_ASSIGN_OR_RETURN(TupleSetPtr a, LegacyRec(e->child(0), st));
      MAPCOMP_ASSIGN_OR_RETURN(TupleSetPtr b, LegacyRec(e->child(1), st));
      ++st->stats.nested_product_nodes;
      int64_t work = static_cast<int64_t>(a->size()) *
                     static_cast<int64_t>(b->size());
      return Own(TransformSet(st, *a, work,
                              [&b](const Tuple& ta, std::set<Tuple>* out) {
                                for (const Tuple& tb : *b) {
                                  Tuple t = ta;
                                  t.insert(t.end(), tb.begin(), tb.end());
                                  out->insert(std::move(t));
                                }
                              }));
    }
    case ExprKind::kSelect: {
      MAPCOMP_ASSIGN_OR_RETURN(TupleSetPtr a, LegacyRec(e->child(0), st));
      const Condition& cond = e->condition();
      return Own(TransformSet(st, *a, static_cast<int64_t>(a->size()),
                              [&cond](const Tuple& t, std::set<Tuple>* out) {
                                if (cond.Eval(t)) out->insert(t);
                              }));
    }
    case ExprKind::kProject: {
      MAPCOMP_ASSIGN_OR_RETURN(TupleSetPtr a, LegacyRec(e->child(0), st));
      const std::vector<int>& indexes = e->indexes();
      return Own(TransformSet(st, *a, static_cast<int64_t>(a->size()),
                              [&indexes](const Tuple& t,
                                         std::set<Tuple>* out) {
                                Tuple p;
                                p.reserve(indexes.size());
                                for (int i : indexes) p.push_back(t[i - 1]);
                                out->insert(std::move(p));
                              }));
    }
    case ExprKind::kSkolem: {
      if (st->options->skolem_mode == SkolemEvalMode::kError) {
        return Status::Unsupported(
            "cannot evaluate Skolem function " + e->name() +
            " without an interpretation (SkolemEvalMode::kError)");
      }
      MAPCOMP_ASSIGN_OR_RETURN(TupleSetPtr a, LegacyRec(e->child(0), st));
      const std::string& name = e->name();
      const std::vector<int>& indexes = e->indexes();
      return Own(TransformSet(
          st, *a, static_cast<int64_t>(a->size()),
          [&name, &indexes](const Tuple& t, std::set<Tuple>* out) {
            std::string term = name + "(";
            for (size_t i = 0; i < indexes.size(); ++i) {
              if (i > 0) term += ",";
              term += ValueToString(t[indexes[i] - 1]);
            }
            term += ")";
            Tuple extended = t;
            extended.push_back(Value(std::move(term)));
            out->insert(std::move(extended));
          }));
    }
    case ExprKind::kUserOp: {
      const op::OperatorDef* def =
          st->options->registry ? st->options->registry->Find(e->name())
                                : nullptr;
      if (def == nullptr || !def->eval) {
        return Status::Unsupported("no evaluator for operator " + e->name());
      }
      // Child results are borrowed, never copied: the shared_ptrs keep
      // them alive (and the memo may serve them to other parents).
      std::vector<TupleSetPtr> owners;
      std::vector<const std::set<Tuple>*> kids;
      owners.reserve(e->children().size());
      kids.reserve(e->children().size());
      for (const ExprPtr& c : e->children()) {
        MAPCOMP_ASSIGN_OR_RETURN(TupleSetPtr k, LegacyRec(c, st));
        kids.push_back(k.get());
        owners.push_back(std::move(k));
      }
      op::EvalContext ctx;
      ctx.active_domain = &st->domain;
      MAPCOMP_ASSIGN_OR_RETURN(std::set<Tuple> out, def->eval(*e, kids, ctx));
      return Own(std::move(out));
    }
  }
  return Status::Internal("unknown expression kind");
}

Result<TupleSetPtr> LegacyRec(const ExprPtr& e, EvalState* st) {
  // Interned nodes make the memo exact: pointer equality ⇔ structural
  // equality, so a subtree shared k times in the DAG is computed once.
  auto it = st->memo_sets.find(e.get());
  if (it != st->memo_sets.end()) {
    ++st->stats.memo_hits;
    return it->second;
  }
  MAPCOMP_ASSIGN_OR_RETURN(TupleSetPtr out, LegacyEvalNode(e, st));
  st->uses[e.get()].evaluated = true;
  ++st->stats.nodes_evaluated;
  st->stats.tuples_produced += static_cast<int64_t>(out->size());
  st->memo_sets.emplace(e.get(), out);
  AccountInsert(st, e->kind() == ExprKind::kRelation ? 0
                                                     : ApproxSetBytes(*out));
  // This node's computation is the one-and-only traversal of its static
  // child edges — release them now so fully-consumed children drop out of
  // the memo.
  for (const ExprPtr& c : e->children()) Consume(c.get(), st);
  return out;
}

// --------------------------------------------------------------------------
// Columnar kernel path: tuples are flat ValueId rows in TupleTables, set
// operations are linear merge walks over sorted rows, select(product) runs
// as a planned hash join, and select(D^r) with bound coordinates enumerates
// only the constraint-pruned space.
// --------------------------------------------------------------------------

Result<TablePtr> KernelRec(const ExprPtr& e, EvalState* st);

/// Kernel sibling of TransformSet: applies `emit(row, out_data)` — which
/// appends whole rows of `out_arity` ids — to every row of `in`, sharded
/// into ≤ kMaxShards contiguous row chunks when `work` crosses the
/// threshold, concatenated in chunk order. Requires out_arity > 0 (callers
/// special-case the degenerate arity-0 shapes).
template <typename Emit>
TupleTable TransformTable(EvalState* st, const TupleTable& in, int64_t work,
                          int out_arity, const Emit& emit) {
  int64_t n = in.size();
  bool eligible = work >= st->options->parallel_threshold;
  if (eligible) ++st->stats.sharded_nodes;
  TupleTable out(out_arity);
  if (!eligible || st->pool == nullptr || n <= 1) {
    for (int64_t i = 0; i < n; ++i) emit(in.Row(i), &out.MutableData());
    out.FinishAppends();
    return out;
  }
  int64_t chunk = (n + kMaxShards - 1) / kMaxShards;
  std::vector<std::vector<ValueId>> chunks =
      runtime::ShardedTransform<std::vector<ValueId>>(
          st->pool, n, chunk, st->max_helpers,
          [&in, &emit](int64_t begin, int64_t end) {
            std::vector<ValueId> local;
            for (int64_t i = begin; i < end; ++i) emit(in.Row(i), &local);
            return local;
          });
  std::vector<ValueId>& data = out.MutableData();
  for (const std::vector<ValueId>& c : chunks) {
    data.insert(data.end(), c.begin(), c.end());
  }
  out.FinishAppends();
  return out;
}

/// Enumerates domain_ids^r with the first coordinate position restricted to
/// [first_begin, first_end), in lexicographic id order (domain_ids is
/// ascending, so the output rows are sorted).
void EnumerateDomainIdRange(const std::vector<ValueId>& ids, int r,
                            int64_t first_begin, int64_t first_end,
                            std::vector<ValueId>* out) {
  if (first_begin >= first_end) return;
  std::vector<int64_t> idx(static_cast<size_t>(r), 0);
  idx[0] = first_begin;
  int64_t d = static_cast<int64_t>(ids.size());
  for (;;) {
    for (int i = 0; i < r; ++i) out->push_back(ids[idx[i]]);
    int pos = r - 1;
    while (pos >= 0) {
      ++idx[pos];
      int64_t limit = pos == 0 ? first_end : d;
      if (idx[pos] < limit) break;
      if (pos == 0) return;
      idx[pos] = 0;
      --pos;
    }
  }
}

Result<TablePtr> KernelEvalDomain(int arity, EvalState* st) {
  const std::vector<ValueId>& ids = st->domain_ids;
  int64_t d = static_cast<int64_t>(ids.size());
  double size = std::pow(static_cast<double>(d), static_cast<double>(arity));
  MAPCOMP_RETURN_IF_ERROR(CheckDomainGuard(arity, d, size, *st->options));
  if (arity == 0) {
    TupleTable unit(0);
    unit.AppendRow(nullptr);
    return OwnTable(std::move(unit));
  }
  if (d == 0) return OwnTable(TupleTable(arity));
  bool eligible = size >= static_cast<double>(st->options->parallel_threshold);
  if (eligible) ++st->stats.sharded_nodes;
  TupleTable out(arity);
  if (!eligible || st->pool == nullptr || d <= 1) {
    EnumerateDomainIdRange(ids, arity, 0, d, &out.MutableData());
    out.FinishAppends();
    return OwnTable(std::move(out));
  }
  int64_t chunk = (d + kMaxShards - 1) / kMaxShards;
  std::vector<std::vector<ValueId>> chunks =
      runtime::ShardedTransform<std::vector<ValueId>>(
          st->pool, d, chunk, st->max_helpers,
          [&ids, arity](int64_t begin, int64_t end) {
            std::vector<ValueId> local;
            EnumerateDomainIdRange(ids, arity, begin, end, &local);
            return local;
          });
  std::vector<ValueId>& data = out.MutableData();
  for (const std::vector<ValueId>& c : chunks) {
    data.insert(data.end(), c.begin(), c.end());
  }
  out.FinishAppends();
  return OwnTable(std::move(out));
}

/// select(product(a, b)): pushes single-side conjuncts below the product,
/// turns cross-side equalities into hash-join keys, and keeps the rest as a
/// residual filter on joined rows. The product child itself is never
/// materialized (its memo refcount is released through the bypass cascade).
Result<TablePtr> KernelSelectOverProduct(const ExprPtr& e, EvalState* st) {
  const ExprPtr& prod = e->child(0);
  const int la = prod->child(0)->arity(), ra = prod->child(1)->arity();
  JoinPlan plan = eval_internal::PlanJoin(e->condition(), la, ra);
  MAPCOMP_ASSIGN_OR_RETURN(TablePtr a, KernelRec(prod->child(0), st));
  MAPCOMP_ASSIGN_OR_RETURN(TablePtr b, KernelRec(prod->child(1), st));
  TablePtr fa = a, fb = b;
  if (!plan.left_filter.IsTrue()) {
    CompiledCond cc = CompiledCond::Compile(plan.left_filter, &st->dict);
    const ValueDict& dict = st->dict;
    fa = OwnTable(TransformTable(
        st, *a, a->size(), la,
        [&cc, &dict, la](const ValueId* row, std::vector<ValueId>* out) {
          if (cc.Eval(row, la, dict)) out->insert(out->end(), row, row + la);
        }));
  }
  if (!plan.right_filter.IsTrue()) {
    CompiledCond cc = CompiledCond::Compile(plan.right_filter, &st->dict);
    const ValueDict& dict = st->dict;
    fb = OwnTable(TransformTable(
        st, *b, b->size(), ra,
        [&cc, &dict, ra](const ValueId* row, std::vector<ValueId>* out) {
          if (cc.Eval(row, ra, dict)) out->insert(out->end(), row, row + ra);
        }));
  }
  CompiledCond residual = CompiledCond::Compile(plan.residual, &st->dict);
  const int out_arity = la + ra;
  if (!plan.keys.empty()) {
    ++st->stats.hash_join_nodes;
    // Probe work drives sharding eligibility (the build is linear anyway).
    bool eligible = std::max(fa->size(), fb->size()) >=
                    st->options->parallel_threshold;
    if (eligible) ++st->stats.sharded_nodes;
    return OwnTable(eval_internal::HashJoin(
        *fa, *fb, plan.keys, residual, st->dict,
        eligible ? st->pool : nullptr, st->max_helpers));
  }
  // No usable equality keys: nested loop over the *filtered* sides, with
  // the residual applied during emission (still strictly less work than
  // materializing the product and selecting afterwards).
  ++st->stats.nested_product_nodes;
  if (out_arity == 0) {
    TupleTable out(0);
    if (!fa->empty() && !fb->empty() &&
        (residual.IsTrue() || residual.Eval(nullptr, 0, st->dict))) {
      out.AppendRow(nullptr);
    }
    return OwnTable(std::move(out));
  }
  const ValueDict& dict = st->dict;
  const TupleTable& right = *fb;
  TupleTable out = TransformTable(
      st, *fa, fa->size() * fb->size(), out_arity,
      [&residual, &dict, &right, la, ra, out_arity](
          const ValueId* lrow, std::vector<ValueId>* out_data) {
        std::vector<ValueId> combined(static_cast<size_t>(out_arity));
        std::copy(lrow, lrow + la, combined.begin());
        for (int64_t j = 0; j < right.size(); ++j) {
          const ValueId* rrow = right.Row(j);
          std::copy(rrow, rrow + ra, combined.begin() + la);
          if (residual.IsTrue() ||
              residual.Eval(combined.data(), out_arity, dict)) {
            out_data->insert(out_data->end(), combined.begin(),
                             combined.end());
          }
        }
      });
  // (sorted a) × (sorted b) emitted a-major is already sorted, and pairs of
  // unique rows are unique.
  return OwnTable(std::move(out));
}

/// select(D^r) with bound coordinates: enumerates one representative per
/// equality class (pinned classes contribute a single id), so the guarded
/// work is |D|^free_classes instead of |D|^r, then applies the full
/// condition to every candidate row.
Result<TablePtr> KernelSelectOverDomain(const ExprPtr& e,
                                        const DomainSelectPlan& plan,
                                        EvalState* st) {
  const int r = e->child(0)->arity();
  const std::vector<ValueId>& ids = st->domain_ids;
  int64_t d = static_cast<int64_t>(ids.size());
  std::vector<ValueId> class_id(plan.num_classes, 0);
  std::vector<bool> class_bound(plan.num_classes, false);
  std::vector<int> free_slot(plan.num_classes, -1);
  int free_count = 0;
  for (int c = 0; c < plan.num_classes; ++c) {
    if (plan.class_const[c]) {
      const ValueId* id = st->dict.Find(*plan.class_const[c]);
      // D^r only contains domain values: a coordinate pinned to a constant
      // outside D makes the selection empty without enumerating anything.
      if (id == nullptr ||
          !std::binary_search(ids.begin(), ids.end(), *id)) {
        return OwnTable(TupleTable(r));
      }
      class_id[c] = *id;
      class_bound[c] = true;
    } else {
      free_slot[c] = free_count++;
    }
  }
  double size = std::pow(static_cast<double>(d),
                         static_cast<double>(free_count));
  // The guard measures the *pruned* enumeration — the whole point of the
  // constraint-driven path (the nested-loop oracle still guards |D|^r) —
  // and the diagnostic reports that pruned work, not |D|^r.
  if (size > static_cast<double>(st->options->max_domain_tuples)) {
    return Status::ResourceExhausted(
        "constraint-pruned enumeration of sigma(D^" + std::to_string(r) +
        ") over " + std::to_string(d) + " values still needs " +
        std::to_string(free_count) +
        " free coordinate classes — too large");
  }
  if (free_count > 0 && d == 0) return OwnTable(TupleTable(r));
  CompiledCond cc = CompiledCond::Compile(e->condition(), &st->dict);
  const ValueDict& dict = st->dict;

  // Enumerates assignments whose *first free class* takes ids[begin..end),
  // odometer over the remaining free classes.
  auto enumerate = [&](int64_t begin, int64_t end) {
    std::vector<ValueId> local;
    std::vector<int64_t> odo(static_cast<size_t>(std::max(free_count, 1)), 0);
    std::vector<ValueId> row(static_cast<size_t>(r));
    if (free_count == 0) {
      for (int k = 0; k < r; ++k) row[k] = class_id[plan.class_of[k]];
      if (cc.Eval(row.data(), r, dict)) {
        local.insert(local.end(), row.begin(), row.end());
      }
      return local;
    }
    if (begin >= end) return local;
    odo[0] = begin;
    for (;;) {
      for (int k = 0; k < r; ++k) {
        int c = plan.class_of[k];
        row[k] = class_bound[c] ? class_id[c] : ids[odo[free_slot[c]]];
      }
      if (cc.Eval(row.data(), r, dict)) {
        local.insert(local.end(), row.begin(), row.end());
      }
      int pos = free_count - 1;
      while (pos >= 0) {
        ++odo[pos];
        int64_t limit = pos == 0 ? end : d;
        if (odo[pos] < limit) break;
        if (pos == 0) return local;
        odo[pos] = 0;
        --pos;
      }
    }
  };

  bool eligible = size >= static_cast<double>(st->options->parallel_threshold);
  if (eligible) ++st->stats.sharded_nodes;
  TupleTable out(r);
  if (free_count == 0 || !eligible || st->pool == nullptr || d <= 1) {
    std::vector<ValueId> rows = enumerate(0, std::max<int64_t>(d, 1));
    out.MutableData() = std::move(rows);
  } else {
    int64_t chunk = (d + kMaxShards - 1) / kMaxShards;
    std::vector<std::vector<ValueId>> chunks =
        runtime::ShardedTransform<std::vector<ValueId>>(
            st->pool, d, chunk, st->max_helpers,
            [&enumerate](int64_t begin, int64_t end) {
              return enumerate(begin, end);
            });
    std::vector<ValueId>& data = out.MutableData();
    for (const std::vector<ValueId>& c : chunks) {
      data.insert(data.end(), c.begin(), c.end());
    }
  }
  out.FinishAppends();
  // Class-major enumeration is not coordinate-lexicographic; assignments
  // are distinct, so sorting alone canonicalizes.
  out.SortRows();
  return OwnTable(std::move(out));
}

Result<TablePtr> KernelEvalNode(const ExprPtr& e, EvalState* st) {
  switch (e->kind()) {
    case ExprKind::kRelation: {
      // Encoded once per evaluation (memoized per interned node). The
      // instance's values are all in the dictionary's seeded range, so the
      // encode is a linear pass and arrives sorted. A ragged relation (the
      // instance API never validates arity) is a clean error here, not an
      // out-of-bounds row read.
      MAPCOMP_ASSIGN_OR_RETURN(
          TupleTable t, TupleTable::FromSet(st->instance->Get(e->name()),
                                            e->arity(), &st->dict));
      return OwnTable(std::move(t));
    }
    case ExprKind::kDomain:
      return KernelEvalDomain(e->arity(), st);
    case ExprKind::kEmpty:
      return OwnTable(TupleTable(e->arity()));
    case ExprKind::kLiteral: {
      TupleTable out(e->arity());
      if (e->arity() == 0) {
        if (!e->tuples().empty()) out.AppendRow(nullptr);
        return OwnTable(std::move(out));
      }
      std::vector<ValueId>& data = out.MutableData();
      for (const Tuple& t : e->tuples()) {
        for (const Value& v : t) data.push_back(st->dict.Intern(v));
      }
      out.FinishAppends();
      out.SortDedupRows();
      return OwnTable(std::move(out));
    }
    case ExprKind::kUnion: {
      MAPCOMP_ASSIGN_OR_RETURN(TablePtr a, KernelRec(e->child(0), st));
      MAPCOMP_ASSIGN_OR_RETURN(TablePtr b, KernelRec(e->child(1), st));
      // Shared immutably: a subsumed side means the union IS the other
      // side — no copy (Union(x, x) and the feed loop's re-unions).
      if (a->empty()) return b;
      if (b->empty() || a == b) return a;
      TupleTable merged = TupleTable::UnionOf(*a, *b);
      if (merged.size() == a->size()) return a;  // b ⊆ a
      if (merged.size() == b->size()) return b;  // a ⊆ b
      return OwnTable(std::move(merged));
    }
    case ExprKind::kIntersect: {
      MAPCOMP_ASSIGN_OR_RETURN(TablePtr a, KernelRec(e->child(0), st));
      MAPCOMP_ASSIGN_OR_RETURN(TablePtr b, KernelRec(e->child(1), st));
      if (a == b) return a;
      TupleTable merged = TupleTable::IntersectOf(*a, *b);
      if (merged.size() == a->size()) return a;  // a ⊆ b
      return OwnTable(std::move(merged));
    }
    case ExprKind::kDifference: {
      MAPCOMP_ASSIGN_OR_RETURN(TablePtr a, KernelRec(e->child(0), st));
      MAPCOMP_ASSIGN_OR_RETURN(TablePtr b, KernelRec(e->child(1), st));
      if (a == b) return OwnTable(TupleTable(e->arity()));
      TupleTable merged = TupleTable::DifferenceOf(*a, *b);
      if (merged.size() == a->size()) return a;  // disjoint
      return OwnTable(std::move(merged));
    }
    case ExprKind::kProduct: {
      MAPCOMP_ASSIGN_OR_RETURN(TablePtr a, KernelRec(e->child(0), st));
      MAPCOMP_ASSIGN_OR_RETURN(TablePtr b, KernelRec(e->child(1), st));
      ++st->stats.nested_product_nodes;
      const int la = a->arity(), ra = b->arity();
      const int out_arity = e->arity();
      if (out_arity == 0) {
        TupleTable out(0);
        if (!a->empty() && !b->empty()) out.AppendRow(nullptr);
        return OwnTable(std::move(out));
      }
      const TupleTable& right = *b;
      return OwnTable(TransformTable(
          st, *a, a->size() * b->size(), out_arity,
          [&right, la, ra](const ValueId* lrow, std::vector<ValueId>* out) {
            for (int64_t j = 0; j < right.size(); ++j) {
              out->insert(out->end(), lrow, lrow + la);
              const ValueId* rrow = right.Row(j);
              out->insert(out->end(), rrow, rrow + ra);
            }
          }));
      // Sorted by construction: a-major over two sorted inputs.
    }
    case ExprKind::kSelect: {
      const ExprPtr& child = e->child(0);
      // Plan the join only while the product is unmaterialized: a product
      // another parent already evaluated (it stays memoized as long as this
      // select's edge is pending) is cheaper to filter than to re-join —
      // its children may already have been refcount-dropped.
      if (child->kind() == ExprKind::kProduct &&
          st->memo_tables.find(child.get()) == st->memo_tables.end()) {
        return KernelSelectOverProduct(e, st);
      }
      if (child->kind() == ExprKind::kDomain) {
        DomainSelectPlan plan =
            eval_internal::PlanDomainSelect(e->condition(), child->arity());
        if (plan.unsatisfiable) return OwnTable(TupleTable(e->arity()));
        if (plan.useful) return KernelSelectOverDomain(e, plan, st);
        // Nothing to prune — evaluate D^r normally so it stays memoized.
      }
      MAPCOMP_ASSIGN_OR_RETURN(TablePtr a, KernelRec(child, st));
      CompiledCond cc = CompiledCond::Compile(e->condition(), &st->dict);
      const ValueDict& dict = st->dict;
      const int arity = a->arity();
      if (arity == 0) {
        TupleTable out(0);
        if (!a->empty() && cc.Eval(nullptr, 0, dict)) out.AppendRow(nullptr);
        return OwnTable(std::move(out));
      }
      return OwnTable(TransformTable(
          st, *a, a->size(), arity,
          [&cc, &dict, arity](const ValueId* row, std::vector<ValueId>* out) {
            if (cc.Eval(row, arity, dict)) {
              out->insert(out->end(), row, row + arity);
            }
          }));
      // Filtering preserves sortedness.
    }
    case ExprKind::kProject: {
      MAPCOMP_ASSIGN_OR_RETURN(TablePtr a, KernelRec(e->child(0), st));
      const std::vector<int>& indexes = e->indexes();
      if (indexes.empty()) {
        TupleTable out(0);
        if (!a->empty()) out.AppendRow(nullptr);
        return OwnTable(std::move(out));
      }
      const int out_arity = static_cast<int>(indexes.size());
      TupleTable out = TransformTable(
          st, *a, a->size(), out_arity,
          [&indexes](const ValueId* row, std::vector<ValueId>* out_data) {
            for (int i : indexes) out_data->push_back(row[i - 1]);
          });
      out.SortDedupRows();  // projection reorders and may collapse rows
      return OwnTable(std::move(out));
    }
    case ExprKind::kSkolem: {
      if (st->options->skolem_mode == SkolemEvalMode::kError) {
        return Status::Unsupported(
            "cannot evaluate Skolem function " + e->name() +
            " without an interpretation (SkolemEvalMode::kError)");
      }
      MAPCOMP_ASSIGN_OR_RETURN(TablePtr a, KernelRec(e->child(0), st));
      // Sequential on the calling thread: minting terms interns new ids,
      // and the dictionary only ever mutates outside sharded emits.
      const std::vector<int>& indexes = e->indexes();
      const int in_arity = a->arity();
      TupleTable out(in_arity + 1);
      std::vector<ValueId>& data = out.MutableData();
      data.reserve(static_cast<size_t>(a->size()) * (in_arity + 1));
      for (int64_t i = 0; i < a->size(); ++i) {
        const ValueId* row = a->Row(i);
        std::string term = e->name() + "(";
        for (size_t k = 0; k < indexes.size(); ++k) {
          if (k > 0) term += ",";
          term += ValueToString(st->dict.ValueOf(row[indexes[k] - 1]));
        }
        term += ")";
        data.insert(data.end(), row, row + in_arity);
        data.push_back(st->dict.Intern(Value(std::move(term))));
      }
      out.FinishAppends();
      out.SortRows();  // appended ids land out of id order; rows stay unique
      return OwnTable(std::move(out));
    }
    case ExprKind::kUserOp: {
      const op::OperatorDef* def =
          st->options->registry ? st->options->registry->Find(e->name())
                                : nullptr;
      if (def == nullptr || !def->eval) {
        return Status::Unsupported("no evaluator for operator " + e->name());
      }
      // User evaluators speak std::set<Tuple>: decode children at this
      // boundary (cached per node — a child feeding several user ops
      // decodes once) and re-encode the result.
      std::vector<TablePtr> owners;
      std::vector<const std::set<Tuple>*> kids;
      owners.reserve(e->children().size());
      kids.reserve(e->children().size());
      for (const ExprPtr& c : e->children()) {
        MAPCOMP_ASSIGN_OR_RETURN(TablePtr k, KernelRec(c, st));
        TupleSetPtr& cached = st->decoded[c.get()];
        if (cached == nullptr) cached = Own(k->ToSet(st->dict));
        kids.push_back(cached.get());
        owners.push_back(std::move(k));
      }
      op::EvalContext ctx;
      ctx.active_domain = &st->domain;
      MAPCOMP_ASSIGN_OR_RETURN(std::set<Tuple> out, def->eval(*e, kids, ctx));
      MAPCOMP_ASSIGN_OR_RETURN(
          TupleTable t, TupleTable::FromSet(out, e->arity(), &st->dict));
      return OwnTable(std::move(t));
    }
  }
  return Status::Internal("unknown expression kind");
}

Result<TablePtr> KernelRec(const ExprPtr& e, EvalState* st) {
  auto it = st->memo_tables.find(e.get());
  if (it != st->memo_tables.end()) {
    ++st->stats.memo_hits;
    return it->second;
  }
  MAPCOMP_ASSIGN_OR_RETURN(TablePtr out, KernelEvalNode(e, st));
  st->uses[e.get()].evaluated = true;
  ++st->stats.nodes_evaluated;
  st->stats.tuples_produced += out->size();
  st->memo_tables.emplace(e.get(), out);
  AccountInsert(st, out->ApproxBytes());
  for (const ExprPtr& c : e->children()) Consume(c.get(), st);
  return out;
}

Status InitState(EvalState* st, const std::vector<ExprPtr>& roots,
                 const Instance& instance, const EvalOptions& options) {
  for (const ExprPtr& root : roots) {
    if (root == nullptr) return Status::InvalidArgument("null expression");
  }
  st->instance = &instance;
  st->options = &options;
  st->kernel = !options.force_nested_loop;
  st->domain = instance.ActiveDomain();
  st->domain.insert(options.extra_constants.begin(),
                    options.extra_constants.end());
  if (st->kernel) {
    // Seed the dictionary with everything the evaluation can see up front
    // (domain + every expression constant), sorted — so the id order over
    // this range is the value order and encodes/enumerations arrive sorted.
    std::set<Value> universe = st->domain;
    std::set<const Expr*> visited;
    for (const ExprPtr& root : roots) {
      CollectExprConstants(root, &universe, &visited);
    }
    st->dict.Seed(universe);
    st->domain_ids.reserve(st->domain.size());
    for (const Value& v : st->domain) {
      st->domain_ids.push_back(*st->dict.Find(v));
    }
  } else {
    st->domain_vec.assign(st->domain.begin(), st->domain.end());
  }
  if (options.jobs > 1) {
    st->pool = runtime::GlobalPool();
    st->max_helpers = options.jobs - 1;
  }
  std::set<const Expr*> counted;
  for (const ExprPtr& root : roots) {
    ++st->uses[root.get()].remaining;
    CountUses(root, st, &counted);
  }
  return Status::OK();
}

}  // namespace

void EvalStats::MergeFrom(const EvalStats& other) {
  nodes_evaluated += other.nodes_evaluated;
  memo_hits += other.memo_hits;
  sharded_nodes += other.sharded_nodes;
  tuples_produced += other.tuples_produced;
  hash_join_nodes += other.hash_join_nodes;
  nested_product_nodes += other.nested_product_nodes;
  memo_bytes_total += other.memo_bytes_total;
  memo_bytes_peak = std::max(memo_bytes_peak, other.memo_bytes_peak);
}

EvalStats EvalStats::DiffFrom(const EvalStats& before) const {
  EvalStats out;
  out.nodes_evaluated = nodes_evaluated - before.nodes_evaluated;
  out.memo_hits = memo_hits - before.memo_hits;
  out.sharded_nodes = sharded_nodes - before.sharded_nodes;
  out.tuples_produced = tuples_produced - before.tuples_produced;
  out.hash_join_nodes = hash_join_nodes - before.hash_join_nodes;
  out.nested_product_nodes =
      nested_product_nodes - before.nested_product_nodes;
  out.memo_bytes_total = memo_bytes_total - before.memo_bytes_total;
  out.memo_bytes_peak = memo_bytes_peak;  // watermark, not a counter
  return out;
}

std::string EvalStats::ToString() const {
  return "eval: " + std::to_string(nodes_evaluated) + " nodes, " +
         std::to_string(memo_hits) + " memo hits, " +
         std::to_string(sharded_nodes) + " sharded, " +
         std::to_string(tuples_produced) + " tuples, " +
         std::to_string(hash_join_nodes) + " hash joins, " +
         std::to_string(nested_product_nodes) + " nested products, memo " +
         std::to_string(memo_bytes_peak) + "B peak / " +
         std::to_string(memo_bytes_total) + "B total";
}

std::string EvalResult::Fingerprint() const {
  // Canonical, not pretty: string values are length-prefixed (a quote or
  // comma inside a value must never make two different tuple sets
  // serialize identically — this string is the determinism oracle).
  std::string out = "eval{arity=" + std::to_string(arity) +
                    ";n=" + std::to_string(tuples.size()) + ";";
  for (const Tuple& t : tuples) {
    out += "t" + std::to_string(t.size()) + ":";
    for (const Value& v : t) {
      if (const int64_t* i = std::get_if<int64_t>(&v)) {
        out += "i" + std::to_string(*i) + ";";
      } else {
        const std::string& s = std::get<std::string>(v);
        out += "s" + std::to_string(s.size()) + ":" + s + ";";
      }
    }
  }
  out += "}";
  return out;
}

Result<std::vector<EvalResult>> EvaluateMany(const std::vector<ExprPtr>& roots,
                                             const Instance& instance,
                                             const EvalOptions& options) {
  EvalState st;
  MAPCOMP_RETURN_IF_ERROR(InitState(&st, roots, instance, options));
  std::vector<EvalResult> results(roots.size());
  if (st.kernel) {
    std::vector<TablePtr> tables;
    tables.reserve(roots.size());
    for (size_t i = 0; i < roots.size(); ++i) {
      EvalStats before = st.stats;
      MAPCOMP_ASSIGN_OR_RETURN(TablePtr t, KernelRec(roots[i], &st));
      results[i].arity = roots[i]->arity();
      results[i].stats = st.stats.DiffFrom(before);
      tables.push_back(std::move(t));
      Consume(roots[i].get(), &st);
    }
    // Decode at the boundary: std::set re-sorts by value, so the internal
    // id order never leaks into results or fingerprints.
    for (size_t i = 0; i < roots.size(); ++i) {
      results[i].tuples = tables[i]->ToSet(st.dict);
    }
    return results;
  }
  std::vector<TupleSetPtr> ptrs;
  ptrs.reserve(roots.size());
  for (size_t i = 0; i < roots.size(); ++i) {
    EvalStats before = st.stats;
    MAPCOMP_ASSIGN_OR_RETURN(TupleSetPtr tuples, LegacyRec(roots[i], &st));
    results[i].arity = roots[i]->arity();
    results[i].stats = st.stats.DiffFrom(before);
    ptrs.push_back(std::move(tuples));
    Consume(roots[i].get(), &st);
  }
  // Refcount dropping usually leaves each root set uniquely owned here, so
  // it is moved, not copied (a base-relation root is a non-owning alias
  // into the instance, and duplicate roots share one set — both copy).
  st.memo_sets.clear();
  for (size_t i = 0; i < roots.size(); ++i) {
    if (ptrs[i].use_count() == 1) {
      results[i].tuples = std::move(*ptrs[i]);
    } else {
      results[i].tuples = *ptrs[i];
    }
  }
  return results;
}

Result<bool> EvaluateContainment(const ExprPtr& lhs, const ExprPtr& rhs,
                                 bool equality, const Instance& instance,
                                 const EvalOptions& options,
                                 EvalStats* stats) {
  if (options.force_nested_loop) {
    MAPCOMP_ASSIGN_OR_RETURN(std::vector<EvalResult> sides,
                             EvaluateMany({lhs, rhs}, instance, options));
    if (stats != nullptr) {
      stats->MergeFrom(sides[0].stats);
      stats->MergeFrom(sides[1].stats);
    }
    bool contained = true;
    for (const Tuple& t : sides[0].tuples) {
      if (sides[1].tuples.count(t) == 0) {
        contained = false;
        break;
      }
    }
    if (equality) {
      contained = contained && sides[0].tuples.size() == sides[1].tuples.size();
    }
    return contained;
  }
  EvalState st;
  MAPCOMP_RETURN_IF_ERROR(InitState(&st, {lhs, rhs}, instance, options));
  MAPCOMP_ASSIGN_OR_RETURN(TablePtr a, KernelRec(lhs, &st));
  Consume(lhs.get(), &st);
  MAPCOMP_ASSIGN_OR_RETURN(TablePtr b, KernelRec(rhs, &st));
  Consume(rhs.get(), &st);
  if (stats != nullptr) stats->MergeFrom(st.stats);
  bool contained = TupleTable::SubsetOf(*a, *b);
  if (equality) contained = contained && a->size() == b->size();
  return contained;
}

Result<EvalResult> EvaluateFull(const ExprPtr& e, const Instance& instance,
                                const EvalOptions& options) {
  MAPCOMP_ASSIGN_OR_RETURN(std::vector<EvalResult> results,
                           EvaluateMany({e}, instance, options));
  return std::move(results[0]);
}

Result<std::set<Tuple>> Evaluate(const ExprPtr& e, const Instance& instance,
                                 const EvalOptions& options) {
  MAPCOMP_ASSIGN_OR_RETURN(EvalResult result,
                           EvaluateFull(e, instance, options));
  return std::move(result.tuples);
}

}  // namespace mapcomp
