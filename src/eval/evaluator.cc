#include "src/eval/evaluator.h"

#include <cmath>

namespace mapcomp {

namespace {

struct EvalState {
  const Instance* instance;
  const EvalOptions* options;
  std::set<Value> domain;  // active domain + extra constants
};

Result<std::set<Tuple>> EvalRec(const ExprPtr& e, EvalState* st);

Result<std::set<Tuple>> EvalDomain(int arity, EvalState* st) {
  double size = std::pow(static_cast<double>(st->domain.size()),
                         static_cast<double>(arity));
  if (size > static_cast<double>(st->options->max_domain_tuples)) {
    return Status::ResourceExhausted(
        "enumerating D^" + std::to_string(arity) + " over " +
        std::to_string(st->domain.size()) + " values is too large");
  }
  std::set<Tuple> out;
  Tuple current;
  // Iterative r-fold cross product of the domain.
  std::vector<std::set<Value>::const_iterator> iters(arity, st->domain.begin());
  if (st->domain.empty()) return out;
  while (true) {
    Tuple t;
    t.reserve(arity);
    for (int i = 0; i < arity; ++i) t.push_back(*iters[i]);
    out.insert(std::move(t));
    int pos = arity - 1;
    while (pos >= 0) {
      ++iters[pos];
      if (iters[pos] != st->domain.end()) break;
      iters[pos] = st->domain.begin();
      --pos;
    }
    if (pos < 0) break;
  }
  return out;
}

Result<std::set<Tuple>> EvalRec(const ExprPtr& e, EvalState* st) {
  switch (e->kind()) {
    case ExprKind::kRelation:
      return st->instance->Get(e->name());
    case ExprKind::kDomain:
      return EvalDomain(e->arity(), st);
    case ExprKind::kEmpty:
      return std::set<Tuple>{};
    case ExprKind::kLiteral: {
      std::set<Tuple> out;
      for (const Tuple& t : e->tuples()) out.insert(t);
      return out;
    }
    case ExprKind::kUnion: {
      MAPCOMP_ASSIGN_OR_RETURN(std::set<Tuple> a, EvalRec(e->child(0), st));
      MAPCOMP_ASSIGN_OR_RETURN(std::set<Tuple> b, EvalRec(e->child(1), st));
      a.insert(b.begin(), b.end());
      return a;
    }
    case ExprKind::kIntersect: {
      MAPCOMP_ASSIGN_OR_RETURN(std::set<Tuple> a, EvalRec(e->child(0), st));
      MAPCOMP_ASSIGN_OR_RETURN(std::set<Tuple> b, EvalRec(e->child(1), st));
      std::set<Tuple> out;
      for (const Tuple& t : a) {
        if (b.count(t) > 0) out.insert(t);
      }
      return out;
    }
    case ExprKind::kDifference: {
      MAPCOMP_ASSIGN_OR_RETURN(std::set<Tuple> a, EvalRec(e->child(0), st));
      MAPCOMP_ASSIGN_OR_RETURN(std::set<Tuple> b, EvalRec(e->child(1), st));
      std::set<Tuple> out;
      for (const Tuple& t : a) {
        if (b.count(t) == 0) out.insert(t);
      }
      return out;
    }
    case ExprKind::kProduct: {
      MAPCOMP_ASSIGN_OR_RETURN(std::set<Tuple> a, EvalRec(e->child(0), st));
      MAPCOMP_ASSIGN_OR_RETURN(std::set<Tuple> b, EvalRec(e->child(1), st));
      std::set<Tuple> out;
      for (const Tuple& ta : a) {
        for (const Tuple& tb : b) {
          Tuple t = ta;
          t.insert(t.end(), tb.begin(), tb.end());
          out.insert(std::move(t));
        }
      }
      return out;
    }
    case ExprKind::kSelect: {
      MAPCOMP_ASSIGN_OR_RETURN(std::set<Tuple> a, EvalRec(e->child(0), st));
      std::set<Tuple> out;
      for (const Tuple& t : a) {
        if (e->condition().Eval(t)) out.insert(t);
      }
      return out;
    }
    case ExprKind::kProject: {
      MAPCOMP_ASSIGN_OR_RETURN(std::set<Tuple> a, EvalRec(e->child(0), st));
      std::set<Tuple> out;
      for (const Tuple& t : a) {
        Tuple p;
        p.reserve(e->indexes().size());
        for (int i : e->indexes()) p.push_back(t[i - 1]);
        out.insert(std::move(p));
      }
      return out;
    }
    case ExprKind::kSkolem: {
      if (st->options->skolem_mode == SkolemEvalMode::kError) {
        return Status::Unsupported(
            "cannot evaluate Skolem function " + e->name() +
            " without an interpretation (SkolemEvalMode::kError)");
      }
      MAPCOMP_ASSIGN_OR_RETURN(std::set<Tuple> a, EvalRec(e->child(0), st));
      std::set<Tuple> out;
      for (const Tuple& t : a) {
        std::string term = e->name() + "(";
        for (size_t i = 0; i < e->indexes().size(); ++i) {
          if (i > 0) term += ",";
          term += ValueToString(t[e->indexes()[i] - 1]);
        }
        term += ")";
        Tuple extended = t;
        extended.push_back(Value(std::move(term)));
        out.insert(std::move(extended));
      }
      return out;
    }
    case ExprKind::kUserOp: {
      const op::OperatorDef* def =
          st->options->registry ? st->options->registry->Find(e->name())
                                : nullptr;
      if (def == nullptr || !def->eval) {
        return Status::Unsupported("no evaluator for operator " + e->name());
      }
      std::vector<std::set<Tuple>> kids;
      kids.reserve(e->children().size());
      for (const ExprPtr& c : e->children()) {
        MAPCOMP_ASSIGN_OR_RETURN(std::set<Tuple> k, EvalRec(c, st));
        kids.push_back(std::move(k));
      }
      op::EvalContext ctx;
      ctx.active_domain = &st->domain;
      return def->eval(*e, kids, ctx);
    }
  }
  return Status::Internal("unknown expression kind");
}

}  // namespace

Result<std::set<Tuple>> Evaluate(const ExprPtr& e, const Instance& instance,
                                 const EvalOptions& options) {
  if (e == nullptr) return Status::InvalidArgument("null expression");
  EvalState st;
  st.instance = &instance;
  st.options = &options;
  st.domain = instance.ActiveDomain();
  st.domain.insert(options.extra_constants.begin(),
                   options.extra_constants.end());
  return EvalRec(e, &st);
}

}  // namespace mapcomp
