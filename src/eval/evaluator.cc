#include "src/eval/evaluator.h"

#include <cmath>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/runtime/sharding.h"
#include "src/runtime/thread_pool.h"

namespace mapcomp {

namespace {

/// Node results are shared, not copied: the memo table and every parent
/// hold the same set. Treated as immutable everywhere (the pointee type
/// stays non-const only so EvaluateFull can move the root set out when it
/// is the last owner).
using TupleSetPtr = std::shared_ptr<std::set<Tuple>>;

/// Upper bound on chunks per sharded node. Chunk boundaries are a pure
/// function of the work size and this constant — never of the lane count —
/// which is what keeps results and stats identical at any `jobs`.
constexpr int64_t kMaxShards = 32;

struct EvalState {
  const Instance* instance;
  const EvalOptions* options;
  std::set<Value> domain;       ///< active domain + extra constants
  std::vector<Value> domain_vec;  ///< same values, indexable (set order)
  runtime::ThreadPool* pool = nullptr;  ///< null ⇔ jobs <= 1
  int max_helpers = 0;                  ///< jobs - 1
  std::unordered_map<const Expr*, TupleSetPtr> memo;
  EvalStats stats;
};

TupleSetPtr Own(std::set<Tuple> s) {
  return std::make_shared<std::set<Tuple>>(std::move(s));
}

/// Applies `emit(t, out)` to every tuple of `in`. `work` is the number of
/// candidate tuples the node will enumerate (|in| for unary transforms,
/// |in|·|other| for products); when it crosses the threshold the input is
/// split into ≤ kMaxShards contiguous chunks enumerated concurrently, and
/// the per-chunk sets are merged in chunk order. The merged content is a
/// set, so it is identical whatever the chunking or lane count.
template <typename Emit>
std::set<Tuple> TransformSet(EvalState* st, const std::set<Tuple>& in,
                             int64_t work, const Emit& emit) {
  int64_t n = static_cast<int64_t>(in.size());
  bool eligible = work >= st->options->parallel_threshold;
  if (eligible) ++st->stats.sharded_nodes;
  if (!eligible || st->pool == nullptr || n <= 1) {
    std::set<Tuple> out;
    for (const Tuple& t : in) emit(t, &out);
    return out;
  }
  std::vector<const Tuple*> refs;
  refs.reserve(in.size());
  for (const Tuple& t : in) refs.push_back(&t);
  int64_t chunk = (n + kMaxShards - 1) / kMaxShards;
  std::vector<std::set<Tuple>> chunks =
      runtime::ShardedTransform<std::set<Tuple>>(
          st->pool, n, chunk, st->max_helpers,
          [&refs, &emit](int64_t begin, int64_t end) {
            std::set<Tuple> local;
            for (int64_t i = begin; i < end; ++i) emit(*refs[i], &local);
            return local;
          });
  std::set<Tuple> out;
  for (std::set<Tuple>& c : chunks) out.merge(c);
  return out;
}

/// Enumerates the r-fold product of `vals` whose first coordinate index
/// lies in [first_begin, first_end), in lexicographic order, into `out`.
void EnumerateDomainRange(const std::vector<Value>& vals, int r,
                          int64_t first_begin, int64_t first_end,
                          std::set<Tuple>* out) {
  if (first_begin >= first_end) return;
  std::vector<int64_t> idx(static_cast<size_t>(r), 0);
  idx[0] = first_begin;
  int64_t d = static_cast<int64_t>(vals.size());
  for (;;) {
    Tuple t;
    t.reserve(r);
    for (int i = 0; i < r; ++i) t.push_back(vals[idx[i]]);
    out->insert(out->end(), std::move(t));  // hint: enumeration is sorted
    int pos = r - 1;
    while (pos >= 0) {
      ++idx[pos];
      int64_t limit = pos == 0 ? first_end : d;
      if (idx[pos] < limit) break;
      if (pos == 0) return;
      idx[pos] = 0;
      --pos;
    }
  }
}

Result<TupleSetPtr> EvalRec(const ExprPtr& e, EvalState* st);

Result<TupleSetPtr> EvalDomain(int arity, EvalState* st) {
  const std::vector<Value>& vals = st->domain_vec;
  int64_t d = static_cast<int64_t>(vals.size());
  double size = std::pow(static_cast<double>(d), static_cast<double>(arity));
  // Guard before any enumeration: an oversized D^r fails fast instead of
  // grinding (or fanning a hopeless enumeration across lanes).
  if (size > static_cast<double>(st->options->max_domain_tuples)) {
    return Status::ResourceExhausted(
        "enumerating D^" + std::to_string(arity) + " over " +
        std::to_string(d) + " values is too large");
  }
  if (arity == 0) return Own(std::set<Tuple>{Tuple{}});
  if (d == 0) return Own(std::set<Tuple>{});
  bool eligible = size >= static_cast<double>(st->options->parallel_threshold);
  if (eligible) ++st->stats.sharded_nodes;
  if (!eligible || st->pool == nullptr || d <= 1) {
    std::set<Tuple> out;
    EnumerateDomainRange(vals, arity, 0, d, &out);
    return Own(std::move(out));
  }
  // Shard over the first coordinate: chunk c enumerates the suffix product
  // under first coordinates [c·chunk, (c+1)·chunk). Chunks are disjoint and
  // lexicographically ordered, so the chunk-ordered merge is the sorted set.
  int64_t chunk = (d + kMaxShards - 1) / kMaxShards;
  std::vector<std::set<Tuple>> chunks =
      runtime::ShardedTransform<std::set<Tuple>>(
          st->pool, d, chunk, st->max_helpers,
          [&vals, arity](int64_t begin, int64_t end) {
            std::set<Tuple> local;
            EnumerateDomainRange(vals, arity, begin, end, &local);
            return local;
          });
  std::set<Tuple> out;
  for (std::set<Tuple>& c : chunks) out.merge(c);
  return Own(std::move(out));
}

Result<TupleSetPtr> EvalNode(const ExprPtr& e, EvalState* st) {
  switch (e->kind()) {
    case ExprKind::kRelation:
      // Aliased, non-owning view of the instance's own set (the instance
      // outlives the evaluation); base relations are never copied. The
      // const_cast is never written through: the only mutation anywhere is
      // EvaluateFull's final move-out, gated on use_count() == 1, which a
      // non-owning aliased pointer (use_count 0) can never satisfy.
      return TupleSetPtr(
          TupleSetPtr{},
          const_cast<std::set<Tuple>*>(&st->instance->Get(e->name())));
    case ExprKind::kDomain:
      return EvalDomain(e->arity(), st);
    case ExprKind::kEmpty:
      return Own(std::set<Tuple>{});
    case ExprKind::kLiteral: {
      std::set<Tuple> out;
      for (const Tuple& t : e->tuples()) out.insert(t);
      return Own(std::move(out));
    }
    case ExprKind::kUnion: {
      MAPCOMP_ASSIGN_OR_RETURN(TupleSetPtr a, EvalRec(e->child(0), st));
      MAPCOMP_ASSIGN_OR_RETURN(TupleSetPtr b, EvalRec(e->child(1), st));
      // Results are shared immutably, so a subsumed side means the union
      // IS the other side — no copy. Union(x, x), the memo-witness shape,
      // and the feed loop's re-unions all take these exits.
      if (a->empty()) return b;
      if (b->empty() || a == b) return a;
      // Shard the filter "b minus a" (the only per-tuple work); the final
      // insert of the disjoint remainder is a cheap sequential splice.
      std::set<Tuple> extra = TransformSet(
          st, *b, static_cast<int64_t>(b->size()),
          [&a](const Tuple& t, std::set<Tuple>* out) {
            if (a->count(t) == 0) out->insert(t);
          });
      if (extra.empty()) return a;  // b ⊆ a
      std::set<Tuple> out = *a;
      out.merge(extra);
      return Own(std::move(out));
    }
    case ExprKind::kIntersect: {
      MAPCOMP_ASSIGN_OR_RETURN(TupleSetPtr a, EvalRec(e->child(0), st));
      MAPCOMP_ASSIGN_OR_RETURN(TupleSetPtr b, EvalRec(e->child(1), st));
      return Own(TransformSet(st, *a, static_cast<int64_t>(a->size()),
                              [&b](const Tuple& t, std::set<Tuple>* out) {
                                if (b->count(t) > 0) out->insert(t);
                              }));
    }
    case ExprKind::kDifference: {
      MAPCOMP_ASSIGN_OR_RETURN(TupleSetPtr a, EvalRec(e->child(0), st));
      MAPCOMP_ASSIGN_OR_RETURN(TupleSetPtr b, EvalRec(e->child(1), st));
      return Own(TransformSet(st, *a, static_cast<int64_t>(a->size()),
                              [&b](const Tuple& t, std::set<Tuple>* out) {
                                if (b->count(t) == 0) out->insert(t);
                              }));
    }
    case ExprKind::kProduct: {
      MAPCOMP_ASSIGN_OR_RETURN(TupleSetPtr a, EvalRec(e->child(0), st));
      MAPCOMP_ASSIGN_OR_RETURN(TupleSetPtr b, EvalRec(e->child(1), st));
      int64_t work = static_cast<int64_t>(a->size()) *
                     static_cast<int64_t>(b->size());
      return Own(TransformSet(st, *a, work,
                              [&b](const Tuple& ta, std::set<Tuple>* out) {
                                for (const Tuple& tb : *b) {
                                  Tuple t = ta;
                                  t.insert(t.end(), tb.begin(), tb.end());
                                  out->insert(std::move(t));
                                }
                              }));
    }
    case ExprKind::kSelect: {
      MAPCOMP_ASSIGN_OR_RETURN(TupleSetPtr a, EvalRec(e->child(0), st));
      const Condition& cond = e->condition();
      return Own(TransformSet(st, *a, static_cast<int64_t>(a->size()),
                              [&cond](const Tuple& t, std::set<Tuple>* out) {
                                if (cond.Eval(t)) out->insert(t);
                              }));
    }
    case ExprKind::kProject: {
      MAPCOMP_ASSIGN_OR_RETURN(TupleSetPtr a, EvalRec(e->child(0), st));
      const std::vector<int>& indexes = e->indexes();
      return Own(TransformSet(st, *a, static_cast<int64_t>(a->size()),
                              [&indexes](const Tuple& t,
                                         std::set<Tuple>* out) {
                                Tuple p;
                                p.reserve(indexes.size());
                                for (int i : indexes) p.push_back(t[i - 1]);
                                out->insert(std::move(p));
                              }));
    }
    case ExprKind::kSkolem: {
      if (st->options->skolem_mode == SkolemEvalMode::kError) {
        return Status::Unsupported(
            "cannot evaluate Skolem function " + e->name() +
            " without an interpretation (SkolemEvalMode::kError)");
      }
      MAPCOMP_ASSIGN_OR_RETURN(TupleSetPtr a, EvalRec(e->child(0), st));
      const std::string& name = e->name();
      const std::vector<int>& indexes = e->indexes();
      return Own(TransformSet(
          st, *a, static_cast<int64_t>(a->size()),
          [&name, &indexes](const Tuple& t, std::set<Tuple>* out) {
            std::string term = name + "(";
            for (size_t i = 0; i < indexes.size(); ++i) {
              if (i > 0) term += ",";
              term += ValueToString(t[indexes[i] - 1]);
            }
            term += ")";
            Tuple extended = t;
            extended.push_back(Value(std::move(term)));
            out->insert(std::move(extended));
          }));
    }
    case ExprKind::kUserOp: {
      const op::OperatorDef* def =
          st->options->registry ? st->options->registry->Find(e->name())
                                : nullptr;
      if (def == nullptr || !def->eval) {
        return Status::Unsupported("no evaluator for operator " + e->name());
      }
      // Child results are borrowed, never copied: the shared_ptrs keep
      // them alive (and the memo may serve them to other parents).
      std::vector<TupleSetPtr> owners;
      std::vector<const std::set<Tuple>*> kids;
      owners.reserve(e->children().size());
      kids.reserve(e->children().size());
      for (const ExprPtr& c : e->children()) {
        MAPCOMP_ASSIGN_OR_RETURN(TupleSetPtr k, EvalRec(c, st));
        kids.push_back(k.get());
        owners.push_back(std::move(k));
      }
      op::EvalContext ctx;
      ctx.active_domain = &st->domain;
      MAPCOMP_ASSIGN_OR_RETURN(std::set<Tuple> out, def->eval(*e, kids, ctx));
      return Own(std::move(out));
    }
  }
  return Status::Internal("unknown expression kind");
}

Result<TupleSetPtr> EvalRec(const ExprPtr& e, EvalState* st) {
  // Interned nodes make the memo exact: pointer equality ⇔ structural
  // equality, so a subtree shared k times in the DAG is computed once.
  auto it = st->memo.find(e.get());
  if (it != st->memo.end()) {
    ++st->stats.memo_hits;
    return it->second;
  }
  MAPCOMP_ASSIGN_OR_RETURN(TupleSetPtr out, EvalNode(e, st));
  ++st->stats.nodes_evaluated;
  st->stats.tuples_produced += static_cast<int64_t>(out->size());
  st->memo.emplace(e.get(), out);
  return out;
}

}  // namespace

void EvalStats::MergeFrom(const EvalStats& other) {
  nodes_evaluated += other.nodes_evaluated;
  memo_hits += other.memo_hits;
  sharded_nodes += other.sharded_nodes;
  tuples_produced += other.tuples_produced;
}

EvalStats EvalStats::DiffFrom(const EvalStats& before) const {
  EvalStats out;
  out.nodes_evaluated = nodes_evaluated - before.nodes_evaluated;
  out.memo_hits = memo_hits - before.memo_hits;
  out.sharded_nodes = sharded_nodes - before.sharded_nodes;
  out.tuples_produced = tuples_produced - before.tuples_produced;
  return out;
}

std::string EvalStats::ToString() const {
  return "eval: " + std::to_string(nodes_evaluated) + " nodes, " +
         std::to_string(memo_hits) + " memo hits, " +
         std::to_string(sharded_nodes) + " sharded, " +
         std::to_string(tuples_produced) + " tuples";
}

std::string EvalResult::Fingerprint() const {
  // Canonical, not pretty: string values are length-prefixed (a quote or
  // comma inside a value must never make two different tuple sets
  // serialize identically — this string is the determinism oracle).
  std::string out = "eval{arity=" + std::to_string(arity) +
                    ";n=" + std::to_string(tuples.size()) + ";";
  for (const Tuple& t : tuples) {
    out += "t" + std::to_string(t.size()) + ":";
    for (const Value& v : t) {
      if (const int64_t* i = std::get_if<int64_t>(&v)) {
        out += "i" + std::to_string(*i) + ";";
      } else {
        const std::string& s = std::get<std::string>(v);
        out += "s" + std::to_string(s.size()) + ":" + s + ";";
      }
    }
  }
  out += "}";
  return out;
}

Result<std::vector<EvalResult>> EvaluateMany(const std::vector<ExprPtr>& roots,
                                             const Instance& instance,
                                             const EvalOptions& options) {
  EvalState st;
  st.instance = &instance;
  st.options = &options;
  st.domain = instance.ActiveDomain();
  st.domain.insert(options.extra_constants.begin(),
                   options.extra_constants.end());
  st.domain_vec.assign(st.domain.begin(), st.domain.end());
  if (options.jobs > 1) {
    st.pool = runtime::GlobalPool();
    st.max_helpers = options.jobs - 1;
  }
  std::vector<EvalResult> results(roots.size());
  std::vector<TupleSetPtr> ptrs;
  ptrs.reserve(roots.size());
  for (size_t i = 0; i < roots.size(); ++i) {
    if (roots[i] == nullptr) return Status::InvalidArgument("null expression");
    EvalStats before = st.stats;
    MAPCOMP_ASSIGN_OR_RETURN(TupleSetPtr tuples, EvalRec(roots[i], &st));
    results[i].arity = roots[i]->arity();
    results[i].stats = st.stats.DiffFrom(before);
    ptrs.push_back(std::move(tuples));
  }
  // Dropping the memo usually leaves each root set uniquely owned here, so
  // it is moved, not copied (a base-relation root is a non-owning alias
  // into the instance, and duplicate roots share one set — both copy).
  st.memo.clear();
  for (size_t i = 0; i < roots.size(); ++i) {
    if (ptrs[i].use_count() == 1) {
      results[i].tuples = std::move(*ptrs[i]);
    } else {
      results[i].tuples = *ptrs[i];
    }
  }
  return results;
}

Result<EvalResult> EvaluateFull(const ExprPtr& e, const Instance& instance,
                                const EvalOptions& options) {
  MAPCOMP_ASSIGN_OR_RETURN(std::vector<EvalResult> results,
                           EvaluateMany({e}, instance, options));
  return std::move(results[0]);
}

Result<std::set<Tuple>> Evaluate(const ExprPtr& e, const Instance& instance,
                                 const EvalOptions& options) {
  MAPCOMP_ASSIGN_OR_RETURN(EvalResult result,
                           EvaluateFull(e, instance, options));
  return std::move(result.tuples);
}

}  // namespace mapcomp
