#ifndef MAPCOMP_EVAL_JOIN_H_
#define MAPCOMP_EVAL_JOIN_H_

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "src/algebra/condition.h"
#include "src/eval/tuple_table.h"
#include "src/eval/value_dict.h"
#include "src/runtime/thread_pool.h"

namespace mapcomp {
namespace eval_internal {

/// A selection condition compiled against a ValueDict: attribute references
/// become 0-based column indexes, constants become interned ValueIds, so
/// per-row evaluation is integer compares with no variant dispatch. Order
/// atoms (`<`, `>=`, ...) compare through ValueDict::Compare, which is a
/// plain id comparison within the seeded order-preserving range.
/// Semantics mirror Condition::Eval exactly, including "an atom referencing
/// an out-of-range attribute is false".
class CompiledCond {
 public:
  /// Compiles `c`, interning its constants into `dict` (must run on the
  /// evaluation thread — never during a sharded emit).
  static CompiledCond Compile(const Condition& c, ValueDict* dict);

  bool Eval(const ValueId* row, int arity, const ValueDict& dict) const;

  bool IsTrue() const { return kind_ == Condition::Kind::kTrue; }

 private:
  Condition::Kind kind_ = Condition::Kind::kTrue;
  CmpOp op_ = CmpOp::kEq;
  bool lhs_attr_ = false, rhs_attr_ = false;
  uint32_t lhs_ = 0, rhs_ = 0;  // 0-based column index or ValueId
  std::vector<CompiledCond> children_;
};

/// How a `select(product(a, b))` node will run. Produced by PlanJoin from
/// the selection condition and the two child arities:
///   - conjuncts touching only the left (or only the right) side are pushed
///     below the product as side filters,
///   - equality conjuncts `#i = #j` spanning both sides become hash-join
///     keys,
///   - everything else (mixed non-equalities, disjunctions spanning sides)
///     stays as a residual filter applied to each joined row.
struct JoinPlan {
  Condition left_filter = Condition::True();
  /// Shifted to the right side's local attribute numbering.
  Condition right_filter = Condition::True();
  /// (left attr, right-local attr) pairs, 1-based.
  std::vector<std::pair<int, int>> keys;
  /// Evaluated against the combined row (original attribute numbering).
  Condition residual = Condition::True();
};

JoinPlan PlanJoin(const Condition& cond, int left_arity, int right_arity);

/// Bound-coordinate analysis of `select(D^r, cond)`: equality conjuncts
/// partition the r coordinates into classes, some pinned to a constant —
/// then only one representative per unpinned class needs enumerating, so
/// σ_{#1=c ∧ #2=#3}(D^3) costs |D| candidate rows instead of |D|^3.
struct DomainSelectPlan {
  /// False when no conjunct binds or merges anything (the full D^r would be
  /// enumerated anyway — evaluate the child normally so it stays memoized).
  bool useful = false;
  /// Two conjuncts pin one class to different constants: the selection is
  /// empty without enumerating anything.
  bool unsatisfiable = false;
  /// 0-based coordinate → class index (classes numbered by first coord).
  std::vector<int> class_of;
  /// Pinned constant per class (nullopt = enumerate the domain).
  std::vector<std::optional<Value>> class_const;
  int num_classes = 0;
};

DomainSelectPlan PlanDomainSelect(const Condition& cond, int r);

/// Sharded hash join of two sorted tables: builds a hash index over the
/// smaller side's key columns, probes the larger side in parallel row
/// chunks (deterministic chunk order), emits combined rows in (left, right)
/// column order filtered by `residual`, and returns the canonically sorted
/// result. Row content is independent of lane count and probe order — the
/// final sort makes the table canonical.
TupleTable HashJoin(const TupleTable& left, const TupleTable& right,
                    const std::vector<std::pair<int, int>>& keys,
                    const CompiledCond& residual, const ValueDict& dict,
                    runtime::ThreadPool* pool, int max_helpers);

/// HashJoin's sibling for a cached build side (Instance::JoinIndex):
/// `build_perm` lists the build table's row positions sorted by its key
/// columns in *value* order, so probes binary-search it through
/// ValueDict::Compare instead of building a per-evaluation hash index.
/// The permutation is id-free — one cached build serves every evaluation
/// over the instance — which requires the build table to be a relation
/// encoding in set order (FromSet of fully seeded values), where table row
/// i is exactly set element i. `build_left` says which input the
/// permutation indexes. Emits exactly HashJoin's rows; the final sort
/// makes the result canonical and lane-count-independent.
TupleTable IndexJoin(const TupleTable& left, const TupleTable& right,
                     const std::vector<std::pair<int, int>>& keys,
                     const CompiledCond& residual, const ValueDict& dict,
                     const std::vector<int64_t>& build_perm, bool build_left,
                     runtime::ThreadPool* pool, int max_helpers);

}  // namespace eval_internal
}  // namespace mapcomp

#endif  // MAPCOMP_EVAL_JOIN_H_
