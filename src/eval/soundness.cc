#include "src/eval/soundness.h"

#include <set>

#include "src/eval/checker.h"

namespace mapcomp {

namespace {

bool ConstraintHasSkolem(const Constraint& c) {
  return ContainsSkolem(c.lhs) || ContainsSkolem(c.rhs);
}

bool AnySkolem(const ConstraintSet& cs) {
  for (const Constraint& c : cs) {
    if (ConstraintHasSkolem(c)) return true;
  }
  return false;
}

}  // namespace

std::string CompositionCheck::Report() const {
  std::string out = "compose-soundness: " + std::to_string(instances) +
                    " instances, " + std::to_string(original_satisfied) +
                    " satisfied the original pipeline, of those " +
                    std::to_string(composed_satisfied) +
                    " satisfied the composition, " +
                    std::to_string(violations) + " violations, " +
                    std::to_string(inconclusive_skolem) +
                    " skolem-inconclusive";
  if (completeness_checked > 0) {
    out += "; completeness probes: " + std::to_string(completeness_witnessed) +
           "/" + std::to_string(completeness_checked) + " witnessed";
  }
  out += "; " + eval_stats.ToString();
  out += sound ? "\nverdict: SOUND on every generated instance\n"
               : "\nverdict: UNSOUND\n";
  for (const std::string& c : counterexamples) {
    out += "counterexample:\n" + c;
  }
  return out;
}

Result<CompositionCheck> CheckComposition(
    const CompositionProblem& problem, const CompositionResult& result,
    uint64_t generator_seed, int n_instances,
    const CompositionCheckOptions& options) {
  CompositionCheck out;
  if (n_instances <= 0) return out;

  ConstraintSet original = problem.sigma12;
  original.insert(original.end(), problem.sigma23.begin(),
                  problem.sigma23.end());
  const ConstraintSet& composed = result.constraints;

  // One shared domain for both sides of the equivalence: the instance's
  // active domain plus the constants of *both* constraint sets — a D that
  // differed between the two checks would make the comparison meaningless.
  EvalOptions eval = options.eval;
  {
    std::set<Value> consts = CollectConstants(original);
    std::set<Value> composed_consts = CollectConstants(composed);
    consts.insert(composed_consts.begin(), composed_consts.end());
    eval.extra_constants.insert(consts.begin(), consts.end());
  }

  // Signature of the σ2 symbols the composition eliminated (existentially
  // quantified in Σ13) — the relations a completeness probe must re-invent.
  Signature eliminated;
  {
    std::set<std::string> residual(result.residual_sigma2.begin(),
                                   result.residual_sigma2.end());
    for (const std::string& name : problem.sigma2.names()) {
      if (residual.count(name) == 0) {
        MAPCOMP_RETURN_IF_ERROR(
            eliminated.AddRelation(name, problem.sigma2.ArityOf(name)));
      }
    }
  }
  // Completeness probes need both sides Skolem-free: FindExtension's
  // internal satisfaction checks run under the default (erroring) mode.
  const bool composed_has_skolem = AnySkolem(composed);
  const bool original_has_skolem = AnySkolem(original);

  std::mt19937_64 rng(generator_seed);
  for (int i = 0; i < n_instances; ++i) {
    Instance inst = RandomInstanceOver(
        {&problem.sigma1, &problem.sigma2, &problem.sigma3}, &rng,
        options.gen);
    if (options.repair_half && i % 2 == 1) {
      inst = RepairTowards(inst, original, eval);
    }
    ++out.instances;

    // Original-side Skolem terms get the injective interpretation too: a
    // constraint satisfied under it is satisfied under ∃f, so counting the
    // instance as pipeline-satisfying stays sound; one that fails under it
    // just leaves the instance untested (conservative), never an error.
    bool orig_sat = true;
    for (const Constraint& c : original) {
      EvalOptions copts = eval;
      if (ConstraintHasSkolem(c)) {
        copts.skolem_mode = SkolemEvalMode::kInjectiveTerms;
      }
      MAPCOMP_ASSIGN_OR_RETURN(bool sat,
                               Satisfies(inst, c, copts, &out.eval_stats));
      if (!sat) {
        orig_sat = false;
        break;
      }
    }

    if (orig_sat) {
      ++out.original_satisfied;
      // Soundness direction: the generated instance itself interprets the
      // eliminated symbols, so I ⊨ Σ12 ∪ Σ23 forces I ⊨ Σ13. A failing
      // Skolem-free constraint is a hard counterexample; a failing Skolem
      // constraint under the injective interpretation is inconclusive
      // (some other interpretation might satisfy it).
      bool violated = false;
      bool inconclusive = false;
      std::string failing;
      for (const Constraint& c : composed) {
        EvalOptions copts = eval;
        bool has_skolem = ConstraintHasSkolem(c);
        if (has_skolem) copts.skolem_mode = SkolemEvalMode::kInjectiveTerms;
        MAPCOMP_ASSIGN_OR_RETURN(bool sat,
                                 Satisfies(inst, c, copts, &out.eval_stats));
        if (!sat) {
          if (has_skolem) {
            inconclusive = true;
          } else {
            violated = true;
            failing = c.ToString();
            break;
          }
        }
      }
      if (violated) {
        ++out.violations;
        if (static_cast<int>(out.counterexamples.size()) <
            options.max_counterexamples) {
          out.counterexamples.push_back("violated constraint: " + failing +
                                        "\n" + inst.ToString());
        }
      } else if (inconclusive) {
        ++out.inconclusive_skolem;
      } else {
        ++out.composed_satisfied;
      }
    }

    // Bounded completeness probe: when the instance restricted to
    // σ1 ∪ residual σ2 ∪ σ3 satisfies the composition, an equivalent Σ13
    // promises an extension of the eliminated symbols satisfying the
    // original pipeline — search for one. Exponential; gated to tiny cases.
    if (out.completeness_checked < options.completeness_samples &&
        !composed_has_skolem && !original_has_skolem) {
      Instance restricted = inst.RestrictedTo(result.sigma);
      bool restricted_sat = true;
      for (const Constraint& c : composed) {
        MAPCOMP_ASSIGN_OR_RETURN(
            bool sat, Satisfies(restricted, c, eval, &out.eval_stats));
        if (!sat) {
          restricted_sat = false;
          break;
        }
      }
      if (restricted_sat) {
        Result<Instance> witness =
            FindExtension(restricted, eliminated, original);
        if (witness.ok()) {
          ++out.completeness_checked;
          ++out.completeness_witnessed;
        } else if (witness.status().code() == StatusCode::kNotFound) {
          ++out.completeness_checked;
        }
        // ResourceExhausted: search space too large for the bounded probe;
        // counted as neither checked nor witnessed.
      }
    }
  }

  out.sound = out.violations == 0;
  return out;
}

}  // namespace mapcomp
