#include "src/eval/join.h"

#include <algorithm>
#include <unordered_map>

#include "src/runtime/sharding.h"

namespace mapcomp {
namespace eval_internal {

namespace {

/// Chunk boundaries are a pure function of the probe size and the shared
/// runtime::kMaxShardChunks, never of the lane count.
constexpr int64_t kMaxShards = runtime::kMaxShardChunks;

void FlattenConjuncts(const Condition& c,
                      std::vector<const Condition*>* out) {
  if (c.kind() == Condition::Kind::kAnd) {
    for (const Condition& child : c.children()) {
      FlattenConjuncts(child, out);
    }
    return;
  }
  if (c.IsTrue()) return;
  out->push_back(&c);
}

/// Smallest and largest attribute index referenced anywhere in `c`
/// (min stays INT_MAX / max stays 0 when no attribute occurs).
void AttrSpan(const Condition& c, int* min_attr, int* max_attr) {
  switch (c.kind()) {
    case Condition::Kind::kAtom:
      if (c.lhs().is_attr) {
        *min_attr = std::min(*min_attr, c.lhs().attr);
        *max_attr = std::max(*max_attr, c.lhs().attr);
      }
      if (c.rhs().is_attr) {
        *min_attr = std::min(*min_attr, c.rhs().attr);
        *max_attr = std::max(*max_attr, c.rhs().attr);
      }
      break;
    case Condition::Kind::kAnd:
    case Condition::Kind::kOr:
    case Condition::Kind::kNot:
      for (const Condition& child : c.children()) {
        AttrSpan(child, min_attr, max_attr);
      }
      break;
    default:
      break;
  }
}

uint64_t HashKeyCols(const ValueId* row, const std::vector<int>& cols) {
  size_t seed = cols.size();
  for (int c : cols) HashCombine(&seed, row[c]);
  return seed;
}

}  // namespace

CompiledCond CompiledCond::Compile(const Condition& c, ValueDict* dict) {
  CompiledCond out;
  out.kind_ = c.kind();
  switch (c.kind()) {
    case Condition::Kind::kAtom:
      out.op_ = c.op();
      out.lhs_attr_ = c.lhs().is_attr;
      out.lhs_ = out.lhs_attr_ ? static_cast<uint32_t>(c.lhs().attr - 1)
                               : dict->Intern(c.lhs().constant);
      out.rhs_attr_ = c.rhs().is_attr;
      out.rhs_ = out.rhs_attr_ ? static_cast<uint32_t>(c.rhs().attr - 1)
                               : dict->Intern(c.rhs().constant);
      break;
    case Condition::Kind::kAnd:
    case Condition::Kind::kOr:
    case Condition::Kind::kNot:
      out.children_.reserve(c.children().size());
      for (const Condition& child : c.children()) {
        out.children_.push_back(Compile(child, dict));
      }
      break;
    default:
      break;
  }
  return out;
}

bool CompiledCond::Eval(const ValueId* row, int arity,
                        const ValueDict& dict) const {
  switch (kind_) {
    case Condition::Kind::kTrue:
      return true;
    case Condition::Kind::kFalse:
      return false;
    case Condition::Kind::kAtom: {
      ValueId a, b;
      if (lhs_attr_) {
        if (lhs_ >= static_cast<uint32_t>(arity)) return false;
        a = row[lhs_];
      } else {
        a = lhs_;
      }
      if (rhs_attr_) {
        if (rhs_ >= static_cast<uint32_t>(arity)) return false;
        b = row[rhs_];
      } else {
        b = rhs_;
      }
      switch (op_) {
        case CmpOp::kEq:
          return a == b;
        case CmpOp::kNe:
          return a != b;
        case CmpOp::kLt:
          return dict.Compare(a, b) < 0;
        case CmpOp::kLe:
          return dict.Compare(a, b) <= 0;
        case CmpOp::kGt:
          return dict.Compare(a, b) > 0;
        case CmpOp::kGe:
          return dict.Compare(a, b) >= 0;
      }
      return false;
    }
    case Condition::Kind::kAnd:
      for (const CompiledCond& child : children_) {
        if (!child.Eval(row, arity, dict)) return false;
      }
      return true;
    case Condition::Kind::kOr:
      for (const CompiledCond& child : children_) {
        if (child.Eval(row, arity, dict)) return true;
      }
      return false;
    case Condition::Kind::kNot:
      return !children_[0].Eval(row, arity, dict);
  }
  return false;
}

JoinPlan PlanJoin(const Condition& cond, int left_arity, int right_arity) {
  JoinPlan plan;
  std::vector<const Condition*> conjuncts;
  FlattenConjuncts(cond, &conjuncts);
  for (const Condition* c : conjuncts) {
    int min_attr = INT32_MAX, max_attr = 0;
    AttrSpan(*c, &min_attr, &max_attr);
    if (max_attr <= left_arity) {
      // Also takes attribute-free conjuncts (kFalse, const-vs-const atoms):
      // a constant-false conjunct empties the left side, which empties the
      // join — same truth value as filtering afterwards.
      plan.left_filter = Condition::And(std::move(plan.left_filter), *c);
      continue;
    }
    if (min_attr > left_arity) {
      plan.right_filter = Condition::And(std::move(plan.right_filter),
                                         c->ShiftAttrs(-left_arity));
      continue;
    }
    if (c->kind() == Condition::Kind::kAtom && c->op() == CmpOp::kEq &&
        c->lhs().is_attr && c->rhs().is_attr) {
      int x = c->lhs().attr, y = c->rhs().attr;
      if (x > y) std::swap(x, y);
      if (x >= 1 && x <= left_arity && y > left_arity &&
          y <= left_arity + right_arity) {
        plan.keys.emplace_back(x, y - left_arity);
        continue;
      }
    }
    plan.residual = Condition::And(std::move(plan.residual), *c);
  }
  return plan;
}

DomainSelectPlan PlanDomainSelect(const Condition& cond, int r) {
  DomainSelectPlan plan;
  if (r <= 0) return plan;
  // Union-find over the r coordinates, with an optional pinned constant per
  // root. Only top-level equality conjuncts are used — anything else is
  // left to the full-condition filter applied to every enumerated row, so
  // the plan only ever *shrinks* the candidate set, never changes it.
  std::vector<int> parent(r);
  for (int i = 0; i < r; ++i) parent[i] = i;
  std::function<int(int)> find = [&](int i) {
    while (parent[i] != i) {
      parent[i] = parent[parent[i]];
      i = parent[i];
    }
    return i;
  };
  std::vector<std::optional<Value>> pin(r);
  bool merged = false, bound = false;

  std::vector<const Condition*> conjuncts;
  FlattenConjuncts(cond, &conjuncts);
  for (const Condition* c : conjuncts) {
    if (c->kind() != Condition::Kind::kAtom || c->op() != CmpOp::kEq) continue;
    const CondOperand& l = c->lhs();
    const CondOperand& rr = c->rhs();
    auto in_range = [r](const CondOperand& o) {
      return o.is_attr && o.attr >= 1 && o.attr <= r;
    };
    if (in_range(l) && in_range(rr)) {
      int a = find(l.attr - 1), b = find(rr.attr - 1);
      if (a == b) continue;
      if (pin[a] && pin[b] &&
          CompareValues(*pin[a], *pin[b]) != 0) {
        plan.unsatisfiable = true;
        plan.useful = true;
        return plan;
      }
      if (!pin[a] && pin[b]) pin[a] = pin[b];
      parent[b] = a;
      merged = true;
    } else if (in_range(l) != in_range(rr)) {
      const CondOperand& attr = in_range(l) ? l : rr;
      const CondOperand& cst = in_range(l) ? rr : l;
      if (cst.is_attr) continue;  // the other side is an out-of-range attr
      int a = find(attr.attr - 1);
      if (pin[a] && CompareValues(*pin[a], cst.constant) != 0) {
        plan.unsatisfiable = true;
        plan.useful = true;
        return plan;
      }
      pin[a] = cst.constant;
      bound = true;
    }
  }
  if (!merged && !bound) return plan;  // nothing to prune
  plan.useful = true;
  plan.class_of.assign(r, -1);
  std::vector<int> class_of_root(r, -1);
  for (int i = 0; i < r; ++i) {
    int root = find(i);
    if (class_of_root[root] < 0) {
      class_of_root[root] = plan.num_classes++;
      plan.class_const.push_back(pin[root]);
    }
    plan.class_of[i] = class_of_root[root];
  }
  return plan;
}

TupleTable HashJoin(const TupleTable& left, const TupleTable& right,
                    const std::vector<std::pair<int, int>>& keys,
                    const CompiledCond& residual, const ValueDict& dict,
                    runtime::ThreadPool* pool, int max_helpers) {
  const bool build_left = left.size() <= right.size();
  const TupleTable& build = build_left ? left : right;
  const TupleTable& probe = build_left ? right : left;
  std::vector<int> build_cols, probe_cols;
  build_cols.reserve(keys.size());
  probe_cols.reserve(keys.size());
  for (const auto& [l, r] : keys) {
    build_cols.push_back(build_left ? l - 1 : r - 1);
    probe_cols.push_back(build_left ? r - 1 : l - 1);
  }

  const int la = left.arity(), ra = right.arity();
  const int out_arity = la + ra;
  TupleTable out(out_arity);
  int64_t n = probe.size();
  if (n == 0 || build.size() == 0) return out;

  std::unordered_multimap<uint64_t, int64_t> index;
  index.reserve(static_cast<size_t>(build.size()));
  for (int64_t i = 0; i < build.size(); ++i) {
    index.emplace(HashKeyCols(build.Row(i), build_cols), i);
  }
  int64_t chunk = (n + kMaxShards - 1) / kMaxShards;
  std::vector<std::vector<ValueId>> chunks =
      runtime::ShardedTransform<std::vector<ValueId>>(
          pool, n, chunk, max_helpers,
          [&](int64_t begin, int64_t end) {
            std::vector<ValueId> local;
            std::vector<ValueId> combined(static_cast<size_t>(out_arity));
            for (int64_t i = begin; i < end; ++i) {
              const ValueId* prow = probe.Row(i);
              auto [it, last] =
                  index.equal_range(HashKeyCols(prow, probe_cols));
              for (; it != last; ++it) {
                const ValueId* brow = build.Row(it->second);
                bool match = true;
                for (size_t k = 0; k < probe_cols.size(); ++k) {
                  if (prow[probe_cols[k]] != brow[build_cols[k]]) {
                    match = false;
                    break;
                  }
                }
                if (!match) continue;
                const ValueId* lrow = build_left ? brow : prow;
                const ValueId* rrow = build_left ? prow : brow;
                std::copy(lrow, lrow + la, combined.begin());
                std::copy(rrow, rrow + ra, combined.begin() + la);
                if (!residual.IsTrue() &&
                    !residual.Eval(combined.data(), out_arity, dict)) {
                  continue;
                }
                local.insert(local.end(), combined.begin(), combined.end());
              }
            }
            return local;
          });
  std::vector<ValueId>& data = out.MutableData();
  for (const std::vector<ValueId>& c : chunks) {
    data.insert(data.end(), c.begin(), c.end());
  }
  out.FinishAppends();
  // Left rows and right rows are each unique, so joined pairs are unique:
  // sorting alone canonicalizes.
  out.SortRows();
  return out;
}

TupleTable IndexJoin(const TupleTable& left, const TupleTable& right,
                     const std::vector<std::pair<int, int>>& keys,
                     const CompiledCond& residual, const ValueDict& dict,
                     const std::vector<int64_t>& build_perm, bool build_left,
                     runtime::ThreadPool* pool, int max_helpers) {
  const TupleTable& build = build_left ? left : right;
  const TupleTable& probe = build_left ? right : left;
  std::vector<int> build_cols, probe_cols;
  build_cols.reserve(keys.size());
  probe_cols.reserve(keys.size());
  for (const auto& [l, r] : keys) {
    build_cols.push_back(build_left ? l - 1 : r - 1);
    probe_cols.push_back(build_left ? r - 1 : l - 1);
  }

  const int la = left.arity(), ra = right.arity();
  const int out_arity = la + ra;
  TupleTable out(out_arity);
  int64_t n = probe.size();
  if (n == 0 || build.size() == 0) return out;

  // Three-way comparison of a build row (by permutation entry) against a
  // probe row on the key columns, in value order — the order build_perm is
  // sorted by, whatever ids this evaluation assigned.
  auto cmp = [&](int64_t build_row, const ValueId* prow) {
    const ValueId* brow = build.Row(build_row);
    for (size_t k = 0; k < build_cols.size(); ++k) {
      int c = dict.Compare(brow[build_cols[k]], prow[probe_cols[k]]);
      if (c != 0) return c;
    }
    return 0;
  };

  int64_t chunk = (n + kMaxShards - 1) / kMaxShards;
  std::vector<std::vector<ValueId>> chunks =
      runtime::ShardedTransform<std::vector<ValueId>>(
          pool, n, chunk, max_helpers,
          [&](int64_t begin, int64_t end) {
            std::vector<ValueId> local;
            std::vector<ValueId> combined(static_cast<size_t>(out_arity));
            for (int64_t i = begin; i < end; ++i) {
              const ValueId* prow = probe.Row(i);
              auto lo = std::lower_bound(
                  build_perm.begin(), build_perm.end(), prow,
                  [&](int64_t b, const ValueId* p) { return cmp(b, p) < 0; });
              auto hi = std::upper_bound(
                  lo, build_perm.end(), prow,
                  [&](const ValueId* p, int64_t b) { return cmp(b, p) > 0; });
              for (auto it = lo; it != hi; ++it) {
                const ValueId* brow = build.Row(*it);
                const ValueId* lrow = build_left ? brow : prow;
                const ValueId* rrow = build_left ? prow : brow;
                std::copy(lrow, lrow + la, combined.begin());
                std::copy(rrow, rrow + ra, combined.begin() + la);
                if (!residual.IsTrue() &&
                    !residual.Eval(combined.data(), out_arity, dict)) {
                  continue;
                }
                local.insert(local.end(), combined.begin(), combined.end());
              }
            }
            return local;
          });
  std::vector<ValueId>& data = out.MutableData();
  for (const std::vector<ValueId>& c : chunks) {
    data.insert(data.end(), c.begin(), c.end());
  }
  out.FinishAppends();
  out.SortRows();
  return out;
}

}  // namespace eval_internal
}  // namespace mapcomp
