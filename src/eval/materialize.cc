#include "src/eval/materialize.h"

#include <set>

#include "src/eval/checker.h"

namespace mapcomp {

Result<MaterializeResult> PopulateResiduals(
    const Instance& input, const ConstraintSet& constraints,
    const std::vector<std::string>& residuals, const EvalOptions& options,
    int max_iterations) {
  MaterializeResult out;
  out.instance = input;
  std::set<std::string> residual_set(residuals.begin(), residuals.end());

  // Collect, per residual symbol, the expressions that feed it.
  struct Feed {
    std::string target;
    ExprPtr source;
  };
  std::vector<Feed> feeds;
  for (const Constraint& c : constraints) {
    auto bare = [&](const ExprPtr& e) {
      return e->kind() == ExprKind::kRelation &&
             residual_set.count(e->name()) > 0;
    };
    if (bare(c.rhs)) feeds.push_back(Feed{c.rhs->name(), c.lhs});
    if (c.kind == ConstraintKind::kEquality && bare(c.lhs)) {
      feeds.push_back(Feed{c.lhs->name(), c.rhs});
    }
  }

  EvalOptions opts = options;
  std::set<Value> consts = CollectConstants(constraints);
  opts.extra_constants.insert(consts.begin(), consts.end());

  for (int iter = 0; iter < max_iterations; ++iter) {
    out.iterations = iter + 1;
    bool grew = false;
    for (const Feed& feed : feeds) {
      Result<std::set<Tuple>> value = Evaluate(feed.source, out.instance,
                                               opts);
      if (!value.ok()) {
        // A feed we cannot evaluate (e.g. Skolem without interpretation)
        // simply contributes nothing; the final satisfaction check reports
        // the truth.
        continue;
      }
      const std::set<Tuple>& current = out.instance.Get(feed.target);
      for (const Tuple& t : *value) {
        if (current.count(t) == 0) {
          out.instance.Add(feed.target, t);
          grew = true;
        }
      }
    }
    if (!grew) break;
  }

  MAPCOMP_ASSIGN_OR_RETURN(out.satisfied,
                           SatisfiesAll(out.instance, constraints, opts));
  return out;
}

}  // namespace mapcomp
