#include "src/eval/materialize.h"

#include <set>

#include "src/eval/checker.h"

namespace mapcomp {

std::vector<RelationFeed> CollectFeeds(
    const ConstraintSet& cs,
    const std::function<bool(const std::string&)>& keep,
    bool assign_equalities) {
  auto kept = [&keep](const ExprPtr& e) {
    return e->kind() == ExprKind::kRelation &&
           (keep == nullptr || keep(e->name()));
  };
  std::vector<RelationFeed> feeds;
  for (const Constraint& c : cs) {
    bool equality = c.kind == ConstraintKind::kEquality;
    if (kept(c.rhs)) {
      feeds.push_back(
          RelationFeed{c.rhs->name(), c.lhs, equality && assign_equalities});
    }
    if (equality && kept(c.lhs)) {
      feeds.push_back(RelationFeed{c.lhs->name(), c.rhs, assign_equalities});
    }
  }
  return feeds;
}

int RunFeedFixpoint(Instance* instance, const std::vector<RelationFeed>& feeds,
                    const EvalOptions& options, int max_iterations,
                    EvalStats* stats) {
  int iterations = 0;
  for (int iter = 0; iter < max_iterations; ++iter) {
    iterations = iter + 1;
    bool changed = false;
    for (const RelationFeed& feed : feeds) {
      Result<EvalResult> value = EvaluateFull(feed.source, *instance,
                                              options);
      if (!value.ok()) {
        // A feed we cannot evaluate (e.g. Skolem without interpretation)
        // simply contributes nothing; the caller's satisfaction check
        // reports the truth.
        continue;
      }
      EvalResult result = std::move(value).value();
      if (stats != nullptr) stats->MergeFrom(result.stats);
      if (feed.assign) {
        if (instance->Get(feed.target) != result.tuples()) {
          instance->Set(feed.target, result.TakeTuples());
          changed = true;
        }
        continue;
      }
      const std::set<Tuple>& current = instance->Get(feed.target);
      for (const Tuple& t : result.tuples()) {
        if (current.count(t) == 0) {
          instance->Add(feed.target, t);
          changed = true;
        }
      }
    }
    if (!changed) break;
  }
  return iterations;
}

Result<MaterializeResult> PopulateResiduals(
    const Instance& input, const ConstraintSet& constraints,
    const std::vector<std::string>& residuals, const EvalOptions& options,
    int max_iterations) {
  MaterializeResult out;
  out.instance = input;
  std::set<std::string> residual_set(residuals.begin(), residuals.end());
  // Grow-only even for equalities: starting from empty residuals this
  // computes the least population for constraints monotone in them.
  std::vector<RelationFeed> feeds = CollectFeeds(
      constraints,
      [&residual_set](const std::string& name) {
        return residual_set.count(name) > 0;
      },
      /*assign_equalities=*/false);

  EvalOptions opts = options;
  std::set<Value> consts = CollectConstants(constraints);
  opts.extra_constants.insert(consts.begin(), consts.end());

  out.iterations = RunFeedFixpoint(&out.instance, feeds, opts,
                                   max_iterations, &out.eval_stats);
  MAPCOMP_ASSIGN_OR_RETURN(out.satisfied,
                           SatisfiesAll(out.instance, constraints, opts,
                                        &out.eval_stats));
  return out;
}

}  // namespace mapcomp
