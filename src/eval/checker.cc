#include "src/eval/checker.h"

#include <cmath>

namespace mapcomp {

namespace {

void CollectConstantsFromCondition(const Condition& c, std::set<Value>* out) {
  switch (c.kind()) {
    case Condition::Kind::kAtom:
      if (!c.lhs().is_attr) out->insert(c.lhs().constant);
      if (!c.rhs().is_attr) out->insert(c.rhs().constant);
      break;
    case Condition::Kind::kAnd:
    case Condition::Kind::kOr:
    case Condition::Kind::kNot:
      for (const Condition& ch : c.children()) {
        CollectConstantsFromCondition(ch, out);
      }
      break;
    default:
      break;
  }
}

void CollectConstantsFromExpr(const ExprPtr& e, std::set<Value>* out) {
  if (e == nullptr) return;
  CollectConstantsFromCondition(e->condition(), out);
  for (const Tuple& t : e->tuples()) {
    for (const Value& v : t) out->insert(v);
  }
  for (const ExprPtr& c : e->children()) CollectConstantsFromExpr(c, out);
}

}  // namespace

std::set<Value> CollectConstants(const ConstraintSet& cs) {
  std::set<Value> out;
  for (const Constraint& c : cs) {
    CollectConstantsFromExpr(c.lhs, &out);
    CollectConstantsFromExpr(c.rhs, &out);
  }
  return out;
}

Result<bool> Satisfies(const Instance& instance, const Constraint& c,
                       const EvalOptions& options, EvalStats* stats) {
  // One memo across both sides: the composer's outputs frequently repeat a
  // join subtree on the two sides of a constraint, which then evaluates
  // once. The containment itself runs inside the evaluator — on the kernel
  // path a linear merge walk over two columnar tables, never decoded.
  return EvaluateContainment(c.lhs, c.rhs,
                             c.kind == ConstraintKind::kEquality, instance,
                             options, stats);
}

Result<bool> SatisfiesAll(const Instance& instance, const ConstraintSet& cs,
                          const EvalOptions& options, EvalStats* stats) {
  EvalOptions opts = options;
  std::set<Value> consts = CollectConstants(cs);
  opts.extra_constants.insert(consts.begin(), consts.end());
  for (const Constraint& c : cs) {
    MAPCOMP_ASSIGN_OR_RETURN(bool sat, Satisfies(instance, c, opts, stats));
    if (!sat) return false;
  }
  return true;
}

Result<Instance> FindExtension(const Instance& base, const Signature& extra,
                               const ConstraintSet& cs, int fresh_values,
                               long long max_candidates) {
  // Candidate universe: base's active domain, the constraint constants, and
  // a few fresh values (completeness allows extending the domain, paper §2).
  std::set<Value> universe = base.ActiveDomain();
  std::set<Value> consts = CollectConstants(cs);
  universe.insert(consts.begin(), consts.end());
  for (int i = 0; i < fresh_values; ++i) {
    universe.insert(Value(std::string("fresh" + std::to_string(i))));
  }
  std::vector<Value> vals(universe.begin(), universe.end());

  // Enumerate all candidate tuples per extra relation.
  struct Slot {
    std::string name;
    std::vector<Tuple> candidates;
  };
  std::vector<Slot> slots;
  double total = 1.0;
  for (const std::string& name : extra.names()) {
    Slot slot;
    slot.name = name;
    int r = extra.ArityOf(name);
    double count = std::pow(static_cast<double>(vals.size()),
                            static_cast<double>(r));
    if (count > 20) {
      return Status::ResourceExhausted("too many candidate tuples for " +
                                       name);
    }
    std::vector<int> idx(r, 0);
    while (true) {
      Tuple t;
      for (int i : idx) t.push_back(vals[i]);
      slot.candidates.push_back(std::move(t));
      int pos = r - 1;
      while (pos >= 0 && ++idx[pos] == static_cast<int>(vals.size())) {
        idx[pos--] = 0;
      }
      if (pos < 0) break;
    }
    total *= std::pow(2.0, static_cast<double>(slot.candidates.size()));
    slots.push_back(std::move(slot));
  }
  if (total > static_cast<double>(max_candidates)) {
    return Status::ResourceExhausted("extension search space too large");
  }

  // Enumerate all subsets of candidates for each slot (depth-first).
  Instance current = base;
  std::function<Result<bool>(size_t)> search =
      [&](size_t slot_index) -> Result<bool> {
    if (slot_index == slots.size()) {
      return SatisfiesAll(current, cs);
    }
    const Slot& slot = slots[slot_index];
    size_t n = slot.candidates.size();
    for (uint64_t mask = 0; mask < (uint64_t{1} << n); ++mask) {
      std::set<Tuple> tuples;
      for (size_t i = 0; i < n; ++i) {
        if (mask & (uint64_t{1} << i)) tuples.insert(slot.candidates[i]);
      }
      current.Set(slot.name, std::move(tuples));
      MAPCOMP_ASSIGN_OR_RETURN(bool found, search(slot_index + 1));
      if (found) return true;
      current.Clear(slot.name);
    }
    return false;
  };
  MAPCOMP_ASSIGN_OR_RETURN(bool found, search(0));
  if (!found) {
    return Status::NotFound("no extension found within bounded search");
  }
  return current;
}

}  // namespace mapcomp
