#ifndef MAPCOMP_EVAL_SOUNDNESS_H_
#define MAPCOMP_EVAL_SOUNDNESS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/compose/compose.h"
#include "src/eval/evaluator.h"
#include "src/eval/generator.h"

namespace mapcomp {

/// Options of the compose-soundness harness.
struct CompositionCheckOptions {
  /// Shape of the generated instances.
  GenOptions gen;
  /// Evaluation options (jobs, thresholds, domain guard) applied to every
  /// satisfaction check. `extra_constants` and `skolem_mode` are managed by
  /// the harness itself.
  EvalOptions eval;
  /// Of the generated instances, every second one is chase-repaired towards
  /// the original pipeline (see RepairTowards) so the "original satisfied"
  /// branch is exercised; set false to test raw random instances only.
  bool repair_half = true;
  /// Bounded completeness probes: for up to this many instances whose
  /// restriction satisfies the composed mapping, search for an extension of
  /// the eliminated σ2 symbols satisfying the original pipeline
  /// (FindExtension — exponential, keep tiny). 0 disables.
  int completeness_samples = 0;
  /// Counterexample instances recorded verbatim in the report.
  int max_counterexamples = 3;
};

/// Verdict of the semantic soundness check of one composition (paper §2:
/// Σ13 must be equivalent to Σ12 ∪ Σ23 up to existential quantification of
/// the eliminated σ2 symbols).
struct CompositionCheck {
  int instances = 0;            ///< instances generated and checked
  int original_satisfied = 0;   ///< I ⊨ Σ12 ∪ Σ23
  int composed_satisfied = 0;   ///< of those, I ⊨ Σ13 (must be all)
  int violations = 0;           ///< of those, I ⊭ Σ13 — unsoundness witnesses
  /// Original satisfied but a composed constraint containing a Skolem term
  /// failed under the injective interpretation. Not a violation: Skolem
  /// functions are existentially quantified, and the canonical injective
  /// reading is only one candidate interpretation.
  int inconclusive_skolem = 0;
  int completeness_checked = 0;    ///< bounded completeness probes run
  int completeness_witnessed = 0;  ///< probes that found an extension
  bool sound = true;               ///< violations == 0
  std::vector<std::string> counterexamples;
  EvalStats eval_stats;  ///< aggregated over every satisfaction check

  std::string Report() const;
};

/// Semantic soundness harness: generates `n_instances` finite instances
/// over σ1 ∪ σ2 ∪ σ3 from `generator_seed` (deterministic; half of them
/// chase-repaired towards the original pipeline so satisfaction is
/// non-vacuous), and checks that every instance satisfying the original
/// Σ12 ∪ Σ23 also satisfies the composed `result.constraints` — the
/// eliminated σ2 symbols are existentially quantified in the composed
/// mapping, and the generated instance itself provides the witnesses, so a
/// sound composition can never fail this direction. Optionally probes the
/// completeness direction on bounded instances (see
/// CompositionCheckOptions::completeness_samples).
///
/// Both satisfaction checks run under one domain: the instance's active
/// domain plus the constants of *both* constraint sets.
///
/// Errors (e.g. max_domain_tuples exhausted) abort the check; a finished
/// check with violations == 0 reports sound = true.
Result<CompositionCheck> CheckComposition(
    const CompositionProblem& problem, const CompositionResult& result,
    uint64_t generator_seed, int n_instances,
    const CompositionCheckOptions& options = {});

}  // namespace mapcomp

#endif  // MAPCOMP_EVAL_SOUNDNESS_H_
