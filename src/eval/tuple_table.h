#ifndef MAPCOMP_EVAL_TUPLE_TABLE_H_
#define MAPCOMP_EVAL_TUPLE_TABLE_H_

#include <cstdint>
#include <set>
#include <vector>

#include "src/common/status.h"
#include "src/eval/value_dict.h"

namespace mapcomp {

/// A flat, columnar-kernel relation: row-major `ValueId`s with an arity
/// stride, kept sorted lexicographically by id and deduplicated. Replaces
/// `std::set<Tuple>` inside the evaluator — inserts are appends, set
/// operations are linear merge walks, and a row comparison is a handful of
/// integer compares instead of per-value variant dispatch.
///
/// Because one ValueDict serves a whole evaluation, id equality ⇔ value
/// equality across every table of that evaluation, so any two tables can be
/// merged/intersected/subset-checked directly. The id *order* need not be
/// the value order (Skolem terms append out of order); sortedness by id is
/// only the internal canonical form — ToSet() re-canonicalizes by value.
class TupleTable {
 public:
  explicit TupleTable(int arity = 0) : arity_(arity) {}

  int arity() const { return arity_; }
  int64_t size() const { return rows_; }
  bool empty() const { return rows_ == 0; }

  const ValueId* Row(int64_t i) const { return data_.data() + i * arity_; }

  /// Flat row-major id storage (size() * arity() ids). Lets boundary code
  /// — the zero-decode fingerprint — stream a table without per-row calls.
  const std::vector<ValueId>& Data() const { return data_; }

  /// Appends one row (`arity()` ids; none for arity 0). Invalidates
  /// sortedness until SortRows()/SortDedupRows() is called.
  void AppendRow(const ValueId* row);

  /// Raw row storage for bulk emitters; call FinishAppends() after writing
  /// whole rows so the row count matches.
  std::vector<ValueId>& MutableData() { return data_; }
  void FinishAppends();

  /// Sorts rows lexicographically by id. SortDedupRows also removes
  /// duplicate rows; use plain SortRows when rows are known distinct.
  void SortRows();
  void SortDedupRows();

  /// Binary search in a sorted table.
  bool Contains(const ValueId* row) const;

  /// a ⊆ b over sorted tables (linear merge walk). Differing arities make
  /// every row of a absent from b, so only an empty a is a subset then.
  static bool SubsetOf(const TupleTable& a, const TupleTable& b);

  /// Sorted-merge set operations over sorted tables of equal arity.
  static TupleTable UnionOf(const TupleTable& a, const TupleTable& b);
  static TupleTable IntersectOf(const TupleTable& a, const TupleTable& b);
  static TupleTable DifferenceOf(const TupleTable& a, const TupleTable& b);

  /// Encodes a tuple set. A tuple whose size differs from `arity` is an
  /// InvalidArgument error — flat rows have a fixed stride, so ragged input
  /// (a malformed instance, or a user operator returning wrong-arity
  /// tuples) must be rejected rather than read out of bounds. A std::set
  /// iterates in ascending value order, so when every value is in the
  /// dict's seeded range the encoded table is already sorted; otherwise it
  /// is sorted explicitly.
  static Result<TupleTable> FromSet(const std::set<Tuple>& s, int arity,
                                    ValueDict* dict);

  /// Decodes to the boundary representation (canonical value order —
  /// std::set re-sorts, so id-order vs value-order never leaks out).
  std::set<Tuple> ToSet(const ValueDict& dict) const;

  /// Deterministic approximate heap footprint (memo accounting).
  int64_t ApproxBytes() const {
    return static_cast<int64_t>(data_.size() * sizeof(ValueId)) +
           static_cast<int64_t>(sizeof(TupleTable));
  }

 private:
  int arity_;
  int64_t rows_ = 0;  ///< explicit so arity-0 tables (D^0 = {()}) work
  std::vector<ValueId> data_;
};

/// Three-way lexicographic comparison of two rows of `arity` ids.
inline int CompareRows(const ValueId* a, const ValueId* b, int arity) {
  for (int i = 0; i < arity; ++i) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

}  // namespace mapcomp

#endif  // MAPCOMP_EVAL_TUPLE_TABLE_H_
