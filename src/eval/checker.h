#ifndef MAPCOMP_EVAL_CHECKER_H_
#define MAPCOMP_EVAL_CHECKER_H_

#include "src/constraints/constraint.h"
#include "src/constraints/signature.h"
#include "src/eval/evaluator.h"
#include "src/eval/instance.h"

namespace mapcomp {

/// Collects every constant mentioned in selection conditions and literal
/// relations of the constraint set. These are added to the active domain
/// when checking (see EvalOptions::extra_constants).
std::set<Value> CollectConstants(const ConstraintSet& cs);

/// A ⊨ ξ (paper §2). For equality constraints checks both containments.
/// When `stats` is non-null the evaluation counters of both sides are
/// accumulated into it.
Result<bool> Satisfies(const Instance& instance, const Constraint& c,
                       const EvalOptions& options = {},
                       EvalStats* stats = nullptr);

/// A ⊨ Σ. Automatically adds CollectConstants(cs) to the options' extra
/// constants. Accumulates evaluation counters into `stats` when non-null.
Result<bool> SatisfiesAll(const Instance& instance, const ConstraintSet& cs,
                          const EvalOptions& options = {},
                          EvalStats* stats = nullptr);

/// Searches for an extension of `base` by relations of `extra` (tuples drawn
/// from base's active domain plus `fresh_values` new values) satisfying
/// `cs`. Used to test the completeness half of constraint-set equivalence
/// (paper §2) on small cases. Exponential — keep arities ≤ 2 and domains
/// tiny. Returns the witness instance, NotFound if the bounded search space
/// is exhausted, or an error.
Result<Instance> FindExtension(const Instance& base, const Signature& extra,
                               const ConstraintSet& cs, int fresh_values = 1,
                               long long max_candidates = 200000);

}  // namespace mapcomp

#endif  // MAPCOMP_EVAL_CHECKER_H_
