#include "src/eval/instance.h"

#include <algorithm>
#include <numeric>

namespace mapcomp {

// The mutex member makes the special members non-defaultable. The cache
// deliberately does NOT travel with copies/moves: copying only reads
// relations_ (so it cannot race a concurrent first ActiveDomain() on the
// source, which mutates the cache fields under the mutex), and callers
// that copy-then-mutate directly — MergedWith, RestrictedTo — can never
// inherit a stale warm cache.
Instance::Instance(const Instance& other) : relations_(other.relations_) {}

Instance::Instance(Instance&& other) noexcept
    : relations_(std::move(other.relations_)) {}

Instance& Instance::operator=(const Instance& other) {
  if (this != &other) {
    relations_ = other.relations_;
    adom_valid_ = false;
    adom_cache_.clear();
    jix_cache_.clear();
  }
  return *this;
}

Instance& Instance::operator=(Instance&& other) noexcept {
  if (this != &other) {
    relations_ = std::move(other.relations_);
    adom_valid_ = false;
    adom_cache_.clear();
    jix_cache_.clear();
  }
  return *this;
}

void Instance::Set(const std::string& name, std::set<Tuple> tuples) {
  adom_valid_ = false;
  jix_cache_.clear();
  relations_[name] = std::move(tuples);
}

void Instance::Add(const std::string& name, Tuple t) {
  adom_valid_ = false;
  jix_cache_.clear();
  relations_[name].insert(std::move(t));
}

void Instance::Clear(const std::string& name) {
  adom_valid_ = false;
  jix_cache_.clear();
  relations_.erase(name);
}

const std::set<Tuple>& Instance::Get(const std::string& name) const {
  static const std::set<Tuple>* kEmpty = new std::set<Tuple>();
  auto it = relations_.find(name);
  return it == relations_.end() ? *kEmpty : it->second;
}

bool Instance::Has(const std::string& name) const {
  return relations_.count(name) > 0;
}

std::vector<std::string> Instance::RelationNames() const {
  std::vector<std::string> out;
  out.reserve(relations_.size());
  for (const auto& [name, _] : relations_) out.push_back(name);
  return out;
}

int64_t Instance::TotalTuples() const {
  int64_t out = 0;
  for (const auto& [_, tuples] : relations_) {
    out += static_cast<int64_t>(tuples.size());
  }
  return out;
}

const std::set<Value>& Instance::ActiveDomain() const {
  std::lock_guard<std::mutex> lock(adom_mutex_);
  if (!adom_valid_) {
    adom_cache_.clear();
    for (const auto& [_, tuples] : relations_) {
      for (const Tuple& t : tuples) {
        for (const Value& v : t) adom_cache_.insert(v);
      }
    }
    adom_valid_ = true;
  }
  return adom_cache_;
}

std::shared_ptr<const std::vector<int64_t>> Instance::JoinIndex(
    const std::string& name, const std::vector<int>& cols, bool* hit) const {
  std::lock_guard<std::mutex> lock(jix_mutex_);
  for (const JoinIndexEntry& e : jix_cache_) {
    if (e.relation == name && e.cols == cols) {
      if (hit != nullptr) *hit = true;
      return e.perm;
    }
  }
  if (hit != nullptr) *hit = false;
  const std::set<Tuple>& rel = Get(name);
  std::vector<const Tuple*> rows;
  rows.reserve(rel.size());
  for (const Tuple& t : rel) rows.push_back(&t);
  auto perm = std::make_shared<std::vector<int64_t>>(rows.size());
  std::iota(perm->begin(), perm->end(), int64_t{0});
  std::sort(perm->begin(), perm->end(), [&rows, &cols](int64_t a, int64_t b) {
    const Tuple& ta = *rows[static_cast<size_t>(a)];
    const Tuple& tb = *rows[static_cast<size_t>(b)];
    for (int c : cols) {
      // A ragged row missing the column sorts first; the evaluator rejects
      // ragged relations before any join runs, so this only keeps the sort
      // comparator total on malformed input.
      const bool ha = c >= 0 && static_cast<size_t>(c) < ta.size();
      const bool hb = c >= 0 && static_cast<size_t>(c) < tb.size();
      if (ha != hb) return !ha;
      if (!ha) continue;
      int cmp = CompareValues(ta[static_cast<size_t>(c)],
                              tb[static_cast<size_t>(c)]);
      if (cmp != 0) return cmp < 0;
    }
    return a < b;
  });
  jix_cache_.push_back(JoinIndexEntry{name, cols, perm});
  return perm;
}

Instance Instance::MergedWith(const Instance& other) const {
  Instance out = *this;
  for (const auto& [name, tuples] : other.relations_) {
    out.relations_[name].insert(tuples.begin(), tuples.end());
  }
  return out;
}

Instance Instance::RestrictedTo(const Signature& sig) const {
  Instance out;
  for (const auto& [name, tuples] : relations_) {
    if (sig.Contains(name)) out.relations_[name] = tuples;
  }
  return out;
}

std::string Instance::ToString() const {
  std::string out;
  for (const auto& [name, tuples] : relations_) {
    out += name + " = {";
    bool first = true;
    for (const Tuple& t : tuples) {
      if (!first) out += ",";
      first = false;
      out += TupleToString(t);
    }
    out += "}\n";
  }
  return out;
}

}  // namespace mapcomp
