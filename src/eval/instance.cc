#include "src/eval/instance.h"

namespace mapcomp {

void Instance::Set(const std::string& name, std::set<Tuple> tuples) {
  relations_[name] = std::move(tuples);
}

void Instance::Add(const std::string& name, Tuple t) {
  relations_[name].insert(std::move(t));
}

void Instance::Clear(const std::string& name) { relations_.erase(name); }

const std::set<Tuple>& Instance::Get(const std::string& name) const {
  static const std::set<Tuple>* kEmpty = new std::set<Tuple>();
  auto it = relations_.find(name);
  return it == relations_.end() ? *kEmpty : it->second;
}

bool Instance::Has(const std::string& name) const {
  return relations_.count(name) > 0;
}

std::vector<std::string> Instance::RelationNames() const {
  std::vector<std::string> out;
  out.reserve(relations_.size());
  for (const auto& [name, _] : relations_) out.push_back(name);
  return out;
}

int64_t Instance::TotalTuples() const {
  int64_t out = 0;
  for (const auto& [_, tuples] : relations_) {
    out += static_cast<int64_t>(tuples.size());
  }
  return out;
}

std::set<Value> Instance::ActiveDomain() const {
  std::set<Value> out;
  for (const auto& [_, tuples] : relations_) {
    for (const Tuple& t : tuples) {
      for (const Value& v : t) out.insert(v);
    }
  }
  return out;
}

Instance Instance::MergedWith(const Instance& other) const {
  Instance out = *this;
  for (const auto& [name, tuples] : other.relations_) {
    out.relations_[name].insert(tuples.begin(), tuples.end());
  }
  return out;
}

Instance Instance::RestrictedTo(const Signature& sig) const {
  Instance out;
  for (const auto& [name, tuples] : relations_) {
    if (sig.Contains(name)) out.relations_[name] = tuples;
  }
  return out;
}

std::string Instance::ToString() const {
  std::string out;
  for (const auto& [name, tuples] : relations_) {
    out += name + " = {";
    bool first = true;
    for (const Tuple& t : tuples) {
      if (!first) out += ",";
      first = false;
      out += TupleToString(t);
    }
    out += "}\n";
  }
  return out;
}

}  // namespace mapcomp
