#include "src/eval/instance.h"

namespace mapcomp {

// The mutex member makes the special members non-defaultable. The cache
// deliberately does NOT travel with copies/moves: copying only reads
// relations_ (so it cannot race a concurrent first ActiveDomain() on the
// source, which mutates the cache fields under the mutex), and callers
// that copy-then-mutate directly — MergedWith, RestrictedTo — can never
// inherit a stale warm cache.
Instance::Instance(const Instance& other) : relations_(other.relations_) {}

Instance::Instance(Instance&& other) noexcept
    : relations_(std::move(other.relations_)) {}

Instance& Instance::operator=(const Instance& other) {
  if (this != &other) {
    relations_ = other.relations_;
    adom_valid_ = false;
    adom_cache_.clear();
  }
  return *this;
}

Instance& Instance::operator=(Instance&& other) noexcept {
  if (this != &other) {
    relations_ = std::move(other.relations_);
    adom_valid_ = false;
    adom_cache_.clear();
  }
  return *this;
}

void Instance::Set(const std::string& name, std::set<Tuple> tuples) {
  adom_valid_ = false;
  relations_[name] = std::move(tuples);
}

void Instance::Add(const std::string& name, Tuple t) {
  adom_valid_ = false;
  relations_[name].insert(std::move(t));
}

void Instance::Clear(const std::string& name) {
  adom_valid_ = false;
  relations_.erase(name);
}

const std::set<Tuple>& Instance::Get(const std::string& name) const {
  static const std::set<Tuple>* kEmpty = new std::set<Tuple>();
  auto it = relations_.find(name);
  return it == relations_.end() ? *kEmpty : it->second;
}

bool Instance::Has(const std::string& name) const {
  return relations_.count(name) > 0;
}

std::vector<std::string> Instance::RelationNames() const {
  std::vector<std::string> out;
  out.reserve(relations_.size());
  for (const auto& [name, _] : relations_) out.push_back(name);
  return out;
}

int64_t Instance::TotalTuples() const {
  int64_t out = 0;
  for (const auto& [_, tuples] : relations_) {
    out += static_cast<int64_t>(tuples.size());
  }
  return out;
}

const std::set<Value>& Instance::ActiveDomain() const {
  std::lock_guard<std::mutex> lock(adom_mutex_);
  if (!adom_valid_) {
    adom_cache_.clear();
    for (const auto& [_, tuples] : relations_) {
      for (const Tuple& t : tuples) {
        for (const Value& v : t) adom_cache_.insert(v);
      }
    }
    adom_valid_ = true;
  }
  return adom_cache_;
}

Instance Instance::MergedWith(const Instance& other) const {
  Instance out = *this;
  for (const auto& [name, tuples] : other.relations_) {
    out.relations_[name].insert(tuples.begin(), tuples.end());
  }
  return out;
}

Instance Instance::RestrictedTo(const Signature& sig) const {
  Instance out;
  for (const auto& [name, tuples] : relations_) {
    if (sig.Contains(name)) out.relations_[name] = tuples;
  }
  return out;
}

std::string Instance::ToString() const {
  std::string out;
  for (const auto& [name, tuples] : relations_) {
    out += name + " = {";
    bool first = true;
    for (const Tuple& t : tuples) {
      if (!first) out += ",";
      first = false;
      out += TupleToString(t);
    }
    out += "}\n";
  }
  return out;
}

}  // namespace mapcomp
