#ifndef MAPCOMP_TESTDATA_LITERATURE_SUITE_H_
#define MAPCOMP_TESTDATA_LITERATURE_SUITE_H_

#include <vector>

namespace mapcomp {
namespace testdata {

/// The literature suite (paper §4): the original 22 machine-readable
/// composition problems were distributed from a Microsoft URL that no
/// longer exists; this is an equivalent 22-problem reconstruction from the
/// examples printed in the paper itself and the canonical examples of the
/// cited papers ([5] Fagin et al. PODS'04, [7] Melnik et al. SIGMOD'05,
/// [8] Nash et al. PODS'05), each tagged with its source. Expected outcomes
/// were verified manually and are double-checked semantically by
/// tests/literature_test.cc.
struct LiteratureProblem {
  const char* name;
  const char* text;
  int expect_eliminated;
  int expect_total;
};

inline const std::vector<LiteratureProblem>& LiteratureSuite() {
  static const std::vector<LiteratureProblem>* kSuite =
      new std::vector<LiteratureProblem>{
          {"01-movies-example1",
           R"(schema s1 { Movies(4); }
              schema s2 { FSM(3); }
              schema s3 { Names(2); Years(2); }
              map m12 { pi[1,2,3](sel[#4=5](Movies)) <= FSM; }
              map m23 { pi[1,2](FSM) <= Names; pi[1,3](FSM) <= Years; })",
           1, 1},
          {"02-example3-chain",
           R"(schema s1 { R(2); }
              schema s2 { S(2); }
              schema s3 { T(2); }
              map m12 { R <= S; }
              map m23 { S <= T; })",
           1, 1},
          {"03-example4-unfold",
           R"(schema s1 { R(1); T(1); }
              schema s2 { S(2); }
              schema s3 { U(2); W(2); }
              map m12 { S = R * T; }
              map m23 { pi[2,1](U) - S <= W; })",
           1, 1},
          {"04-example4-left",
           R"(schema s1 { R(2); V(2); }
              schema s2 { S(2); }
              schema s3 { T(1); U(1); }
              map m12 { R <= S & V; }
              map m23 { S <= T * U; })",
           1, 1},
          {"05-example4-right",
           R"(schema s1 { T(1); U(1); }
              schema s2 { S(2); }
              schema s3 { R(2); W(2); }
              map m12 { T * U <= S; }
              map m23 { S - pi[2,1](W) <= R; })",
           1, 1},
          {"06-example5-unfold-nonmonotone",
           R"(schema s1 { R1(1); R2(1); }
              schema s2 { S(2); }
              schema s3 { R3(2); T1(1); T2(2); T3(2); }
              map m12 { S = R1 * R2; }
              map m23 {
                pi[1](R3 - S) <= T1;
                T2 <= T3 - sel[#1=#2](S);
              })",
           1, 1},
          {"07-example7-left-difference",
           R"(schema s1 { R(2); T(2); }
              schema s2 { S(2); }
              schema s3 { U(1); }
              map m12 { R - S <= T; }
              map m23 { pi[1](S) <= U; })",
           1, 1},
          {"08-example9-domain-constraints",
           R"(schema s1 { R(2); T(2); }
              schema s2 { S(2); }
              schema s3 { U(1); }
              map m12 { R & T <= S; }
              map m23 { U <= pi[1](S); })",
           1, 1},
          {"09-example13-right",
           R"(schema s1 { T(2); R(2); }
              schema s2 { S(1); }
              schema s3 { U(3); }
              map m12 { T <= sel[#1=1](S) * pi[1](R); }
              map m23 { S * pi[2,3](U) <= U; })",
           1, 1},
          {"10-example14-deskolemization",
           R"(schema s1 { R(1); T1(1); U(1); }
              schema s2 { S(1); }
              schema s3 { T2(1); }
              map m12 { R <= pi[1](S * (T1 & U)); }
              map m23 { S <= sel[#1<=5](T2); })",
           1, 1},
          // Fagin, Kolaitis, Popa, Tan (PODS 2004): composition requiring
          // second-order dependencies; C cannot be eliminated (paper
          // Example 17; target relation D renamed G — 'D' is reserved).
          {"11-fagin-example17",
           R"(schema s1 { E(2); }
              schema s2 { F(2); C(2); }
              schema s3 { G(2); }
              map m12 {
                E <= F;
                pi[1](E) <= pi[1](C);
                pi[2](E) <= pi[1](C);
              }
              map m23 { pi[4,6](sel[#1=#3 and #2=#5]((F * C) * C)) <= G; })",
           1, 2},
          // Nash, Bernstein, Melnik (PODS 2005), Theorem 1: recursion via
          // transitive closure blocks elimination.
          {"12-nash-tc-recursive",
           R"(schema s1 { R(2); }
              schema s2 { S(2); }
              schema s3 { T(2); }
              map m12 { R <= S; }
              map m23 { S = tc(S); S <= T; })",
           0, 1},
          // Fagin et al.'s Emp/Mgr flavor: existential manager.
          {"13-fagin-emp-mgr",
           R"(schema s1 { Emp(1); }
              schema s2 { Mgr1(2); }
              schema s3 { Mgr(2); SelfMgr(1); }
              map m12 { Emp <= pi[1](Mgr1); }
              map m23 {
                Mgr1 <= Mgr;
                pi[1](sel[#1=#2](Mgr1)) <= SelfMgr;
              })",
           1, 1},
          {"14-glav-mixed-chain",
           R"(schema s1 { R(3); }
              schema s2 { S1(2); S2(2); }
              schema s3 { T(2); }
              map m12 { pi[1,2](R) = S1; S1 <= S2; }
              map m23 { S2 <= T; })",
           2, 2},
          {"15-rename-chain",
           R"(schema s1 { A(2); }
              schema s2 { B(2); C(2); E(2); }
              schema s3 { F(2); }
              map m12 { A = B; B = C; C = E; }
              map m23 { E = F; })",
           3, 3},
          // Melnik, Bernstein, Halevy, Rahm (SIGMOD 2005) executable-mapping
          // flavor: horizontal partitioning then per-partition targets.
          {"16-horizontal-partition",
           R"(schema s1 { R(2); }
              schema s2 { S(2); T(2); }
              schema s3 { U(2); V(2); }
              map m12 {
                sel[#2=1](R) = S;
                sel[#2=2](R) = T;
              }
              map m23 { S <= U; T <= V; })",
           2, 2},
          {"17-vertical-partition-keyed",
           R"(schema s1 { R(3) key(1); }
              schema s2 { S(2) key(1); T(2) key(1); }
              schema s3 { U(2); W(2); }
              map m12 {
                pi[1,2](R) = S;
                pi[1,3](R) = T;
                R = pi[1,2,4](sel[#1=#3](S * T));
              }
              map m23 { S <= U; T <= W; })",
           2, 2},
          {"18-selection-join-reformulation",
           R"(schema s1 { R(2); P(2); }
              schema s2 { S(2); }
              schema s3 { T(2); }
              map m12 { pi[1,4](sel[#2=#3](R * P)) = S; }
              map m23 { sel[#1!=#2](S) <= T; })",
           1, 1},
          {"19-open-world-inclusions",
           R"(schema s1 { R(3); }
              schema s2 { S(2); }
              schema s3 { T(2); }
              map m12 { pi[1,2](R) = S; }
              map m23 { S <= T; })",
           1, 1},
          // Left outerjoin (user-defined operator): S inside the second
          // argument blocks elimination entirely.
          {"20-lojoin-blocked",
           R"(schema s1 { T(1); R(2); }
              schema s2 { S(1); }
              schema s3 { U(1); }
              map m12 { R <= lojoin[#1=#2](T, S) ; }
              map m23 { S <= U; })",
           0, 1},
          // Left outerjoin in its monotone first argument composes fine.
          {"21-lojoin-monotone-arg",
           R"(schema s1 { R(1); }
              schema s2 { S(1); }
              schema s3 { T(1); U(2); }
              map m12 { R <= S; }
              map m23 { lojoin[#1=#2](S, T) <= U; })",
           1, 1},
          // Key-minimized Skolemization followed by deskolemization.
          {"22-keyed-skolem",
           R"(schema s1 { R(2) key(1); }
              schema s2 { S(3); }
              schema s3 { V(3); }
              map m12 { R <= pi[1,2](S); }
              map m23 { S <= V; })",
           1, 1},
      };
  return *kSuite;
}

}  // namespace testdata
}  // namespace mapcomp

#endif  // MAPCOMP_TESTDATA_LITERATURE_SUITE_H_
