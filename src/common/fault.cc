#include "src/common/fault.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

namespace mapcomp {
namespace common {
namespace fault {

const char* FaultPointName(FaultPoint point) {
  switch (point) {
    case FaultPoint::kSlowEliminationWave:
      return "SlowEliminationWave";
    case FaultPoint::kAllocFailInterner:
      return "AllocFailInterner";
    case FaultPoint::kSocketResetAfterNBytes:
      return "SocketResetAfterNBytes";
    case FaultPoint::kSlowEvalSlot:
      return "SlowEvalSlot";
    case FaultPoint::kCount:
      break;
  }
  return "Unknown";
}

#if defined(MAPCOMP_FAULT_POINTS)

namespace {

struct PointState {
  std::atomic<bool> armed{false};
  std::atomic<uint64_t> arg{0};
  std::atomic<uint64_t> trigger_after{0};
  std::atomic<uint64_t> hits{0};
};

PointState g_points[static_cast<int>(FaultPoint::kCount)];

PointState& StateOf(FaultPoint point) {
  return g_points[static_cast<int>(point)];
}

}  // namespace

bool Hit(FaultPoint point) {
  PointState& s = StateOf(point);
  if (!s.armed.load(std::memory_order_acquire)) return false;
  uint64_t n = s.hits.fetch_add(1, std::memory_order_relaxed);
  return n >= s.trigger_after.load(std::memory_order_relaxed);
}

uint64_t Arg(FaultPoint point) {
  return StateOf(point).arg.load(std::memory_order_relaxed);
}

bool Armed(FaultPoint point) {
  return StateOf(point).armed.load(std::memory_order_acquire);
}

uint64_t HitCount(FaultPoint point) {
  return StateOf(point).hits.load(std::memory_order_relaxed);
}

void MaybeSleep(FaultPoint point) {
  if (!Hit(point)) return;
  uint64_t ms = Arg(point);
  if (ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

ScopedFault::ScopedFault(FaultPoint point, uint64_t arg,
                         uint64_t trigger_after)
    : point_(point) {
  PointState& s = StateOf(point);
  if (s.armed.load(std::memory_order_acquire)) {
    std::fprintf(stderr, "ScopedFault: point %s armed twice\n",
                 FaultPointName(point));
    std::abort();
  }
  s.arg.store(arg, std::memory_order_relaxed);
  s.trigger_after.store(trigger_after, std::memory_order_relaxed);
  s.hits.store(0, std::memory_order_relaxed);
  s.armed.store(true, std::memory_order_release);
}

ScopedFault::~ScopedFault() {
  StateOf(point_).armed.store(false, std::memory_order_release);
}

#else  // !MAPCOMP_FAULT_POINTS

ScopedFault::ScopedFault(FaultPoint point, uint64_t, uint64_t)
    : point_(point) {}
ScopedFault::~ScopedFault() = default;

#endif  // MAPCOMP_FAULT_POINTS

}  // namespace fault
}  // namespace common
}  // namespace mapcomp
