#ifndef MAPCOMP_COMMON_RAND_H_
#define MAPCOMP_COMMON_RAND_H_

#include <cmath>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

namespace mapcomp {
namespace rnd {

/// One SplitMix64 step. Advances `state` and returns the next output.
/// The generator behind seed derivation; also usable standalone when a
/// full mt19937_64 is overkill.
inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Derives an independent stream seed from a base seed and a stream index,
/// so several components (simulator, edit stream, per-family generators)
/// can share one user-facing seed without consuming each other's sequences.
inline uint64_t DeriveSeed(uint64_t base, uint64_t stream) {
  uint64_t state = base ^ (0x2545f4914f6cdd1dull * (stream + 1));
  uint64_t out = SplitMix64(&state);
  return SplitMix64(&state) ^ out;
}

/// Uniform integer in [0, n). Thin wrapper so callers share one idiom
/// instead of re-declaring uniform_int_distribution everywhere.
inline int UniformIndex(std::mt19937_64* rng, int n) {
  return std::uniform_int_distribution<int>(0, n - 1)(*rng);
}

/// Zipf-distributed rank sampler: P(k) ∝ 1/(k+1)^s over ranks 0..n-1
/// (rank 0 is the most popular). Weights are precomputed into a cumulative
/// table at construction; Sample is a binary search, so the per-draw cost
/// is O(log n) regardless of skew. s = 0 degenerates to uniform.
///
/// Shared by the schema-registry edit stream (hot-schema selection,
/// recent-mapping revision positions) and bench_registry — one
/// implementation, not per-binary copies (see also UniformIndex for the
/// plain draws in src/eval/generator.cc).
class ZipfSampler {
 public:
  ZipfSampler(int n, double s) : cumulative_(n > 0 ? n : 1) {
    double total = 0.0;
    for (size_t k = 0; k < cumulative_.size(); ++k) {
      total += 1.0 / std::pow(static_cast<double>(k + 1), s);
      cumulative_[k] = total;
    }
    for (double& c : cumulative_) c /= total;
    // Guard against floating-point shortfall at the top end.
    cumulative_.back() = 1.0;
  }

  int size() const { return static_cast<int>(cumulative_.size()); }

  int Sample(std::mt19937_64* rng) const {
    double u = std::uniform_real_distribution<double>(0.0, 1.0)(*rng);
    size_t lo = 0, hi = cumulative_.size() - 1;
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (cumulative_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return static_cast<int>(lo);
  }

 private:
  std::vector<double> cumulative_;
};

}  // namespace rnd
}  // namespace mapcomp

#endif  // MAPCOMP_COMMON_RAND_H_
