#ifndef MAPCOMP_COMMON_STATUS_H_
#define MAPCOMP_COMMON_STATUS_H_

#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>
#include <utility>

namespace mapcomp {

/// Error codes used across the library. Modeled on the Arrow/RocksDB Status
/// idiom: fallible operations return Status or Result<T>, never throw.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kUnsupported,
  kFailedPrecondition,
  kResourceExhausted,
  kInternal,
  // Append-only from here (serve::WireStatus mirrors these codes and its
  // numerics are wire-pinned; renumbering would silently remap old frames).
  kOverloaded,         // admission shed: never admitted, safe to retry
  kDeadlineExceeded,   // deadline fired: admitted work was cut short
  kCancelled,          // explicit cancel (handle abandoned or Cancel())
};

/// Stable human-readable name of a code ("OK", "InvalidArgument", ...).
/// Shared by Status::ToString and the wire-facing serve::WireStatus table so
/// a code never prints under two different names.
const char* StatusCodeName(StatusCode code);

/// A success-or-error outcome carrying a code and a human-readable message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  /// True for the two codes a fired CancelToken produces. Interrupted work
  /// is a first-class partial outcome, not a computation failure: the
  /// service counts it separately and never caches it.
  bool IsInterrupt() const {
    return code_ == StatusCode::kDeadlineExceeded ||
           code_ == StatusCode::kCancelled;
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Formats as "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      std::cerr << "Result constructed from OK status\n";
      std::abort();
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& { return CheckedRef(); }
  T& value() & { return CheckedMutableRef(); }
  T&& value() && { return std::move(CheckedMutableRef()); }

  const T& operator*() const& { return CheckedRef(); }
  T& operator*() & { return CheckedMutableRef(); }
  const T* operator->() const { return &CheckedRef(); }

  /// Returns the value, or `fallback` on error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  const T& CheckedRef() const {
    if (!value_.has_value()) {
      std::cerr << "Result::value() on error: " << status_.ToString() << "\n";
      std::abort();
    }
    return *value_;
  }
  T& CheckedMutableRef() {
    if (!value_.has_value()) {
      std::cerr << "Result::value() on error: " << status_.ToString() << "\n";
      std::abort();
    }
    return *value_;
  }

  std::optional<T> value_;
  Status status_;
};

/// Propagates an error Status from a fallible call.
#define MAPCOMP_RETURN_IF_ERROR(expr)       \
  do {                                      \
    ::mapcomp::Status _st = (expr);         \
    if (!_st.ok()) return _st;              \
  } while (0)

#define MAPCOMP_CONCAT_IMPL(x, y) x##y
#define MAPCOMP_CONCAT(x, y) MAPCOMP_CONCAT_IMPL(x, y)

/// Evaluates `rexpr` (a Result<T>), propagating its error or assigning its
/// value to `lhs`.
#define MAPCOMP_ASSIGN_OR_RETURN(lhs, rexpr)                        \
  auto MAPCOMP_CONCAT(_res_, __LINE__) = (rexpr);                   \
  if (!MAPCOMP_CONCAT(_res_, __LINE__).ok())                        \
    return MAPCOMP_CONCAT(_res_, __LINE__).status();                \
  lhs = std::move(MAPCOMP_CONCAT(_res_, __LINE__)).value()

}  // namespace mapcomp

#endif  // MAPCOMP_COMMON_STATUS_H_
