#include "src/common/status.h"

namespace mapcomp {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kOverloaded:
      return "Overloaded";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace mapcomp
