#ifndef MAPCOMP_COMMON_FAULT_H_
#define MAPCOMP_COMMON_FAULT_H_

#include <atomic>
#include <cstdint>

// Deterministic fault-injection points. Tests arm a point with ScopedFault
// and the wired-in production sites (elimination waves, the interner's
// allocation path, the server's socket write path, eval slots) then fail or
// stall in a reproducible way — trigger counts and arguments, never
// randomness, decide when a fault fires, so a failing run replays exactly.
//
// Cost when unarmed: one relaxed atomic load per check. Compiled to
// constant-false no-ops in Release unless MAPCOMP_FAULT_POINTS is defined
// (Debug builds and -DMAPCOMP_FAULT_INJECTION=ON define it; the ASan CI
// job turns it on explicitly so the fault suite runs sanitized in Release).

#if !defined(MAPCOMP_FAULT_POINTS) && !defined(NDEBUG)
#define MAPCOMP_FAULT_POINTS 1
#endif

namespace mapcomp {
namespace common {
namespace fault {

enum class FaultPoint : int {
  kSlowEliminationWave = 0,   // arg = sleep ms before each elimination
  kAllocFailInterner,         // throws std::bad_alloc on the Nth intern
  kSocketResetAfterNBytes,    // arg = server-side reply bytes before reset
  kSlowEvalSlot,              // arg = sleep ms at each eval slot start
  kCount,
};

const char* FaultPointName(FaultPoint point);

#if defined(MAPCOMP_FAULT_POINTS)

constexpr bool kFaultPointsCompiled = true;

/// True when `point` is armed and this hit is at or past the trigger
/// threshold. Every call on an armed point increments its hit counter, so
/// trigger_after=N fires on the (N+1)th and all later hits.
bool Hit(FaultPoint point);

/// The argument the point was armed with (0 when unarmed).
uint64_t Arg(FaultPoint point);

/// True when the point is armed at all (cheap pre-check for sites that
/// need per-call bookkeeping only while a fault is active).
bool Armed(FaultPoint point);

/// Hits observed since arming (armed points only; 0 otherwise).
uint64_t HitCount(FaultPoint point);

/// Convenience for slow-path faults: if Hit(point), sleep Arg(point) ms.
void MaybeSleep(FaultPoint point);

#else  // !MAPCOMP_FAULT_POINTS — everything folds to constants.

constexpr bool kFaultPointsCompiled = false;

inline bool Hit(FaultPoint) { return false; }
inline uint64_t Arg(FaultPoint) { return 0; }
inline bool Armed(FaultPoint) { return false; }
inline uint64_t HitCount(FaultPoint) { return 0; }
inline void MaybeSleep(FaultPoint) {}

#endif  // MAPCOMP_FAULT_POINTS

/// RAII arming of one fault point. Only one ScopedFault per point may be
/// live at a time (tests are serial; nesting aborts). On a build without
/// fault points compiled in, arming is a no-op — tests should check
/// kFaultPointsCompiled and skip.
///
///   ScopedFault slow(FaultPoint::kSlowEliminationWave, /*arg=*/20);
///   ScopedFault alloc(FaultPoint::kAllocFailInterner,
///                     /*arg=*/0, /*trigger_after=*/100);
class ScopedFault {
 public:
  explicit ScopedFault(FaultPoint point, uint64_t arg = 0,
                       uint64_t trigger_after = 0);
  ~ScopedFault();

  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;

  uint64_t hits() const { return HitCount(point_); }

 private:
  FaultPoint point_;
};

}  // namespace fault
}  // namespace common
}  // namespace mapcomp

#endif  // MAPCOMP_COMMON_FAULT_H_
