#ifndef MAPCOMP_COMMON_CANCEL_H_
#define MAPCOMP_COMMON_CANCEL_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "src/common/status.h"

namespace mapcomp {
namespace common {

/// A monotonic-clock deadline. Wall-clock jumps (NTP, suspend/resume) must
/// never fire or un-fire a deadline, so everything here is steady_clock.
/// A default-constructed Deadline is infinite: `expired()` is always false
/// and the check compiles down to a single bool test.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  Deadline() = default;

  static Deadline Infinite() { return Deadline(); }

  /// A deadline `ms` milliseconds from now.
  static Deadline After(int64_t ms) {
    Deadline d;
    d.has_deadline_ = true;
    d.when_ = Clock::now() + std::chrono::milliseconds(ms);
    return d;
  }

  /// An absolute steady-clock deadline (e.g. admission time + budget).
  static Deadline At(Clock::time_point when) {
    Deadline d;
    d.has_deadline_ = true;
    d.when_ = when;
    return d;
  }

  bool has_deadline() const { return has_deadline_; }
  Clock::time_point when() const { return when_; }

  bool expired() const { return has_deadline_ && Clock::now() >= when_; }

  /// The earlier of two deadlines (infinite is the identity).
  static Deadline Min(const Deadline& a, const Deadline& b) {
    if (!a.has_deadline_) return b;
    if (!b.has_deadline_) return a;
    return At(a.when_ < b.when_ ? a.when_ : b.when_);
  }

 private:
  bool has_deadline_ = false;
  Clock::time_point when_{};
};

/// Cheap cooperative-cancellation poll object, copied by value into
/// ComposeOptions / EvalOptions and observed at plan-defined points (round
/// boundaries, wave lanes, task-graph slots, shard chunks). A token fires
/// for one of two reasons, which surface as distinct StatusCodes:
///
///   - its CancelSource was cancelled      -> StatusCode::kCancelled
///   - its Deadline passed                 -> StatusCode::kDeadlineExceeded
///
/// A default-constructed token never fires; polling it is a null check
/// plus a bool test, cheap enough for per-slot / per-chunk granularity.
/// Determinism contract: the token carries no schedule state — a run that
/// completes without the token firing is byte-identical to a run with no
/// token at all, because every check site only *reads* the token.
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(std::shared_ptr<const std::atomic<bool>> cancelled,
              Deadline deadline)
      : cancelled_(std::move(cancelled)), deadline_(deadline) {}

  /// A token that only fires on deadline expiry (no cancel source).
  static CancelToken WithDeadline(Deadline deadline) {
    return CancelToken(nullptr, deadline);
  }

  bool can_fire() const {
    return cancelled_ != nullptr || deadline_.has_deadline();
  }

  bool cancelled() const {
    return cancelled_ && cancelled_->load(std::memory_order_relaxed);
  }

  bool expired() const { return deadline_.expired(); }

  /// True once the token has fired for either reason. This is THE poll.
  bool Fired() const { return cancelled() || expired(); }

  /// kCancelled / kDeadlineExceeded when fired, kOk otherwise. Explicit
  /// cancellation wins the tie so an abandoned-and-late request reads as
  /// cancelled, not coincidentally timed out.
  StatusCode FiredCode() const {
    if (cancelled()) return StatusCode::kCancelled;
    if (expired()) return StatusCode::kDeadlineExceeded;
    return StatusCode::kOk;
  }

  /// A Status describing why the token fired, tagged with the check site
  /// (`where`), or OK when it has not fired.
  Status StatusAt(const char* where) const {
    StatusCode code = FiredCode();
    if (code == StatusCode::kOk) return Status::OK();
    if (code == StatusCode::kCancelled) {
      return Status::Cancelled(std::string("cancelled at ") + where);
    }
    return Status::DeadlineExceeded(std::string("deadline exceeded at ") +
                                    where);
  }

  /// This token with its deadline tightened to the earlier of its own and
  /// `d`; the cancel source (if any) is shared. How a service layers its
  /// own budget on top of a caller-owned token.
  CancelToken Tightened(Deadline d) const {
    return CancelToken(cancelled_, Deadline::Min(deadline_, d));
  }

  const Deadline& deadline() const { return deadline_; }

 private:
  std::shared_ptr<const std::atomic<bool>> cancelled_;
  Deadline deadline_;
};

/// Owner side of a cancellation edge: holds the flag, mints tokens.
/// Thread-safe; Cancel() is idempotent.
class CancelSource {
 public:
  CancelSource() : cancelled_(std::make_shared<std::atomic<bool>>(false)) {}

  void Cancel() { cancelled_->store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_->load(std::memory_order_relaxed);
  }

  CancelToken token(Deadline deadline = Deadline::Infinite()) const {
    return CancelToken(cancelled_, deadline);
  }

 private:
  std::shared_ptr<std::atomic<bool>> cancelled_;
};

}  // namespace common
}  // namespace mapcomp

#endif  // MAPCOMP_COMMON_CANCEL_H_
