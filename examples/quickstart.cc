// Quickstart: the paper's Example 1 (the movies schema editor) end to end.
//
// A designer evolves Movies(mid, name, year, rating, genre, theater) into
// Names(mid, name) + Years(mid, year) via an intermediate FiveStarMovies
// table. Composition eliminates the intermediate table and yields a direct
// mapping from the original schema to the final one.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "src/compose/compose.h"
#include "src/parser/parser.h"

int main() {
  // Composition tasks can be written in a plain-text format (paper §4).
  // Attributes are positional: Movies is mid=1, name=2, year=3, rating=4,
  // genre=5, theater=6.
  const char* task = R"(
    schema original { Movies(6); }
    schema intermediate { FiveStarMovies(3); }
    schema final { Names(2); Years(2); }

    -- Mapping (1): keep only 5-star movies, drop genre/theater.
    map m12 {
      pi[1,2,3](sel[#4=5](Movies)) <= FiveStarMovies;
    }

    -- Mapping (2): split the table in two.
    map m23 {
      pi[1,2](FiveStarMovies) <= Names;
      pi[1,3](FiveStarMovies) <= Years;
    }
  )";

  mapcomp::Parser parser;
  mapcomp::Result<mapcomp::CompositionProblem> problem =
      parser.ParseProblem(task);
  if (!problem.ok()) {
    std::printf("parse error: %s\n", problem.status().ToString().c_str());
    return 1;
  }

  mapcomp::CompositionResult result = mapcomp::Compose(*problem);

  std::printf("=== composition report ===\n%s\n", result.Report().c_str());
  std::printf("=== composed mapping (Movies -> Names, Years) ===\n%s",
              mapcomp::ConstraintSetToString(result.constraints).c_str());
  std::printf(
      "\nThe paper's expected result:\n"
      "  pi[1,2](sel[#4=5](Movies)) <= Names;\n"
      "  pi[1,3](sel[#4=5](Movies)) <= Years;\n"
      "(the computed form is equivalent; composed outputs are often more\n"
      "verbose than hand-derived ones — paper §4.)\n");
  return 0;
}
