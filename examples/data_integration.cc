// Data integration: composing a query with GAV view definitions (view
// unfolding, §1.1) and with GLAV inclusions. A mediator exposes views over
// a source database; a client query over the views is rewritten into a
// direct query over the source by composing the two mappings.
//
// Build & run:  ./build/examples/data_integration

#include <cstdio>

#include "src/compose/compose.h"
#include "src/parser/parser.h"

using namespace mapcomp;

namespace {

void RunTask(const char* title, const char* task) {
  std::printf("=== %s ===\n", title);
  Parser parser;
  Result<CompositionProblem> problem = parser.ParseProblem(task);
  if (!problem.ok()) {
    std::printf("parse error: %s\n", problem.status().ToString().c_str());
    return;
  }
  CompositionResult result = Compose(*problem);
  std::printf("%s", result.Report().c_str());
  std::printf("composed constraints:\n%s\n",
              ConstraintSetToString(result.constraints).c_str());
}

}  // namespace

int main() {
  // GAV: the views are *defined* (equalities) in terms of the source;
  // unfolding substitutes the definitions into the query. Source:
  // Orders(order, cust, amount), Customers(cust, region).
  RunTask("GAV view unfolding",
          R"(schema source { Orders(3); Customers(2); }
             schema views  { BigOrders(2); West(1); }
             schema query  { Answer(1); }
             map definitions {
               BigOrders = pi[1,2](sel[#3>=100](Orders));
               West = pi[1](sel[#2='west'](Customers));
             }
             map client_query {
               -- customers in the west with a big order
               pi[2](sel[#2=#3](BigOrders * West)) <= Answer;
             })");

  // GLAV: the mediated schema is only *sound* (containments), as in
  // open-world data integration; composition still eliminates it, producing
  // an inclusion mapping from source to answer.
  RunTask("GLAV composition",
          R"(schema source { Orders(3); }
             schema mediated { AllOrders(2); }
             schema query { Answer(1); }
             map glav { pi[1,2](Orders) <= AllOrders; }
             map client_query { pi[1](AllOrders) <= Answer; })");
  return 0;
}
