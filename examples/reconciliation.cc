// Schema reconciliation (§1.1, §4.2): an initial schema σ0 is modified by
// two independent designers, producing σA and σB. To merge their work we
// need a direct mapping between σA and σB describing the overlapping
// content, obtained by composing the *inverse* of the σ0→σA mapping with
// the σ0→σB mapping — i.e. eliminating the shared ancestor's symbols.
//
// Build & run:  ./build/examples/reconciliation [schema_size] [edits]

#include <cstdio>
#include <cstdlib>

#include "src/simulator/scenarios.h"

using namespace mapcomp;

int main(int argc, char** argv) {
  sim::ReconciliationScenarioOptions opts;
  opts.schema_size = argc > 1 ? std::atoi(argv[1]) : 10;
  opts.num_edits = argc > 2 ? std::atoi(argv[2]) : 12;
  opts.seed = 7;

  std::printf("Shared ancestor schema: %d relations. Each designer applies "
              "%d random edits.\n\n",
              opts.schema_size, opts.num_edits);

  CompositionProblem problem = sim::BuildReconciliationProblem(opts);
  std::printf("branch A schema: %d relations; ancestor: %d; branch B: %d\n",
              problem.sigma1.size(), problem.sigma2.size(),
              problem.sigma3.size());
  std::printf("input mappings: %zu + %zu constraints (%d operators)\n\n",
              problem.sigma12.size(), problem.sigma23.size(),
              OperatorCount(problem.sigma12) +
                  OperatorCount(problem.sigma23));

  CompositionResult result = Compose(problem);
  std::printf("%s\n", result.Report().c_str());
  std::printf("reconciled mapping A <-> B: %zu constraints, %d operators\n",
              result.constraints.size(),
              OperatorCount(result.constraints));
  if (!result.residual_sigma2.empty()) {
    std::printf("ancestor symbols kept as intermediates:");
    for (const std::string& s : result.residual_sigma2) {
      std::printf(" %s", s.c_str());
    }
    std::printf("\n(populating them at low cost lets the mapping be used "
                "anyway — paper §1.3)\n");
  }
  int shown = 0;
  std::printf("\nsample constraints:\n");
  for (const Constraint& c : result.constraints) {
    if (++shown > 8) {
      std::printf("  ...\n");
      break;
    }
    std::printf("  %s;\n", c.ToString().c_str());
  }
  return 0;
}
