// Schema evolution: an interactive-editor session simulated with the
// paper's schema evolution simulator (§4.1). A random schema receives a
// sequence of edits (add/drop attribute, partition, normalize, ...); after
// every edit the accumulated mapping original->current is composed with the
// edit's mapping, so the designer always holds a direct mapping from the
// original schema to the current one.
//
// Build & run:  ./build/examples/schema_evolution [edits]

#include <cstdio>
#include <cstdlib>

#include "src/simulator/scenarios.h"

using namespace mapcomp;

int main(int argc, char** argv) {
  int edits = argc > 1 ? std::atoi(argv[1]) : 20;

  sim::EditingScenarioOptions opts;
  opts.schema_size = 8;
  opts.num_edits = edits;
  opts.seed = 2024;

  std::printf("Simulating a schema-editor session: schema of %d relations, "
              "%d edits...\n\n",
              opts.schema_size, opts.num_edits);
  sim::EditingScenarioResult res = sim::RunEditingScenario(opts);

  std::printf("per-primitive composition outcomes:\n");
  std::printf("  %-6s %8s %12s %12s\n", "prim", "edits", "elim-frac",
              "ms/edit");
  for (const auto& [p, stats] : res.per_primitive) {
    std::printf("  %-6s %8d %12.3f %12.3f\n", sim::PrimitiveName(p),
                stats.edits, stats.EliminatedFraction(),
                stats.MillisPerEdit());
  }
  std::printf(
      "\ntotal: eliminated %d/%d intermediate symbols (%.1f%%) in %.1f ms\n",
      res.symbols_eliminated, res.symbols_total,
      100.0 * res.EliminatedFraction(), res.total_millis);
  std::printf("residual symbols kept in the mapping: %d "
              "(recovered later: %d)\n",
              res.residual_symbols, res.residual_recovered);

  std::printf("\nfinal mapping original -> evolved (%d constraints, "
              "%d operators):\n",
              static_cast<int>(res.final_mapping.constraints.size()),
              OperatorCount(res.final_mapping.constraints));
  // Print a sample of the constraints to keep the output readable.
  int shown = 0;
  for (const Constraint& c : res.final_mapping.constraints) {
    if (++shown > 10) {
      std::printf("  ... (%zu more)\n",
                  res.final_mapping.constraints.size() - 10);
      break;
    }
    std::printf("  %s;\n", c.ToString().c_str());
  }
  return 0;
}
